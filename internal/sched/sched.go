// Package sched implements the batch scheduling policies under study.
//
// Baselines (standard node allocation, nodes are exclusive):
//
//	FCFS         strict first-come-first-served
//	FirstFit     queue scan, start whatever fits
//	EASY         aggressive backfill with one reservation for the queue head
//	Conservative backfill with reservations for every queued job
//
// Paper contributions (node sharing by SMT core oversubscription):
//
//	ShareFirstFit     co-allocation-aware first fit
//	ShareBackfill     co-allocation-aware EASY backfill
//	ShareConservative co-allocation-aware conservative backfill
//
// A policy is a pure decision procedure: it inspects a Context (queue,
// running set, cluster, interference model) and returns the list of jobs to
// start now together with their placements. The simulator owns all state
// mutation, which keeps every policy trivially testable.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/topology"
)

// ShareConfig tunes the sharing-capable policies. The zero value disables
// sharing entirely (the policy degrades to its exclusive ancestor).
type ShareConfig struct {
	// Enabled turns co-allocation on.
	Enabled bool
	// MaxDegree caps the number of jobs per node; 2 matches the paper's
	// hyper-threading sharing (one job per hardware-thread layer).
	MaxDegree int
	// MinComplementarity rejects pairings whose stress vectors overlap too
	// much (see app.Complementarity). 0 accepts everything.
	MinComplementarity float64
	// PairingAware sorts co-allocation candidates by complementarity with
	// the resident job; disabled (ablation) picks candidates in node order.
	PairingAware bool
	// InflationAccounting makes backfill reservations use
	// interference-inflated completion estimates, preserving the EASY
	// no-delay guarantee under sharing. Disabling it (ablation) plans with
	// nominal walltimes and can delay the queue head.
	InflationAccounting bool
	// PreferShared places jobs on co-allocation candidates before idle
	// nodes; disabling it (ablation) exhausts idle nodes first and shares
	// only under pressure.
	PreferShared bool
	// MinEstimatedRate rejects co-allocations whose estimated progress
	// rate — for the incoming job or any resident — falls below this
	// floor. Zero disables the check. Unlike MinComplementarity (a cheap
	// stress-vector heuristic), this gate consults the interference model
	// itself, so it also honors empirically measured pair matrices.
	MinEstimatedRate float64
}

// DefaultShareConfig returns the configuration the paper's strategies use.
func DefaultShareConfig() ShareConfig {
	return ShareConfig{
		Enabled:             true,
		MaxDegree:           2,
		MinComplementarity:  0.40,
		PairingAware:        true,
		InflationAccounting: true,
		PreferShared:        true,
	}
}

// RunningJob is the scheduler-visible state of a started job.
type RunningJob struct {
	// Job is the underlying job (read-only for policies).
	Job *job.Job
	// NodeIDs are the nodes the job occupies.
	NodeIDs []int
	// Exclusive reports whether the job holds whole nodes.
	Exclusive bool
	// NominalEnd is the walltime-limit end ignoring sharing inflation
	// (start + requested walltime).
	NominalEnd des.Time
	// PredictedEnd is the inflation-aware completion estimate maintained by
	// the simulator: now + remaining requested work / current progress rate.
	PredictedEnd des.Time
	// Rate is the job's current progress rate (1 when running dedicated).
	Rate float64
}

// Decision is one start action returned by a policy.
type Decision struct {
	// Job is the job to start.
	Job *job.Job
	// Placement is the exact allocation to commit.
	Placement cluster.Placement
	// Shared marks a co-allocation (the job lands on nodes that already
	// host another job).
	Shared bool
	// EstimatedRate is the policy's conservative progress-rate estimate for
	// the placement (1 for exclusive placements).
	EstimatedRate float64
}

// Context is the scheduler's view of the world at one decision point.
type Context struct {
	// Now is the current simulated time.
	Now des.Time
	// Cluster is the machine (policies must treat it as read-only).
	Cluster *cluster.Cluster
	// Queue holds pending jobs in priority order (head first).
	Queue []*job.Job
	// Running holds the running set.
	Running []*RunningJob
	// Inter is the co-run model used for pairing decisions and inflation
	// estimates.
	Inter *interference.Model
	// Share is the sharing configuration.
	Share ShareConfig
	// Topo, when set, makes placement locality-aware: idle candidates are
	// ordered compactly so jobs span as few leaf switches as possible.
	Topo *topology.Topology

	// residentIdx caches node → running jobs for the pass; built lazily by
	// residents (the co-allocation paths query it once per node per queued
	// job, so the linear scan must not repeat).
	residentIdx [][]*RunningJob

	// compatIdx memoizes pairing evaluations per (guest application,
	// resident application multiset) class for the pass. Pairing quality is
	// a pure function of the applications' stress vectors and the
	// interference model, so every node hosting the same resident class
	// shares one evaluation instead of re-running Complementarity and
	// NamedRates per candidate node per queued job.
	compatIdx map[compatKey]compatProfile
	// hostRateIdx memoizes the interference model's host-rate answer per
	// (host application, guest application) pair for the pass — the
	// inflation-accounting path asks this once per resident per candidate
	// placement.
	hostRateIdx map[compatKey]float64
}

// compatKey identifies a pairing class. residents holds the single resident
// application name in the common MaxDegree-2 case (allocation-free to
// build); deeper sharing joins the names with NUL separators.
type compatKey struct {
	guest     string
	residents string
}

func makeCompatKey(guest string, residents []*RunningJob) compatKey {
	if len(residents) == 1 {
		return compatKey{guest: guest, residents: residents[0].Job.App.Name}
	}
	joined := ""
	for i, r := range residents {
		if i > 0 {
			joined += "\x00"
		}
		joined += r.Job.App.Name
	}
	return compatKey{guest: guest, residents: joined}
}

// compatProfile is one memoized pairing evaluation: whether the pairing
// passes the configured gates, its worst complementarity score, and the
// guest's estimated progress rate.
type compatProfile struct {
	ok    bool
	score float64
	rate  float64
}

// compatFor returns the memoized pairing evaluation of guest job j against
// the residents of a node, computing and caching it on first use.
func (ctx *Context) compatFor(j *job.Job, residents []*RunningJob) compatProfile {
	key := makeCompatKey(j.App.Name, residents)
	if p, ok := ctx.compatIdx[key]; ok {
		return p
	}
	cfg := ctx.Share
	score := 1.0
	loads := []interference.Load{{App: j.App.Name, Stress: j.App.Stress}}
	for _, r := range residents {
		s := app.Complementarity(j.App.Stress, r.Job.App.Stress)
		if s < score {
			score = s
		}
		loads = append(loads, interference.Load{App: r.Job.App.Name, Stress: r.Job.App.Stress})
	}
	p := compatProfile{score: score}
	if score >= cfg.MinComplementarity {
		rates := ctx.Inter.NamedRates(loads)
		p.ok = true
		p.rate = rates[0]
		if cfg.MinEstimatedRate > 0 {
			for _, r := range rates {
				if r < cfg.MinEstimatedRate {
					p.ok = false
					break
				}
			}
		}
	}
	if ctx.compatIdx == nil {
		ctx.compatIdx = make(map[compatKey]compatProfile)
	}
	ctx.compatIdx[key] = p
	return p
}

// hostRateWith returns the memoized interference-model progress rate of a
// running host job when guest j lands beside it.
func (ctx *Context) hostRateWith(r *RunningJob, j *job.Job) float64 {
	key := compatKey{guest: r.Job.App.Name, residents: j.App.Name}
	if rate, ok := ctx.hostRateIdx[key]; ok {
		return rate
	}
	rates := ctx.Inter.NamedRates([]interference.Load{
		{App: r.Job.App.Name, Stress: r.Job.App.Stress},
		{App: j.App.Name, Stress: j.App.Stress},
	})
	if ctx.hostRateIdx == nil {
		ctx.hostRateIdx = make(map[compatKey]float64)
	}
	ctx.hostRateIdx[key] = rates[0]
	return rates[0]
}

// residents returns the running jobs occupying node ni, using a lazily
// built index over ctx.Running.
func (ctx *Context) residents(ni int) []*RunningJob {
	if ctx.residentIdx == nil {
		ctx.residentIdx = make([][]*RunningJob, ctx.Cluster.Size())
		for _, r := range ctx.Running {
			for _, n := range r.NodeIDs {
				ctx.residentIdx[n] = append(ctx.residentIdx[n], r)
			}
		}
	}
	return ctx.residentIdx[ni]
}

// Policy decides which queued jobs start now.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Schedule returns start decisions in commit order. Implementations
	// must not mutate the cluster; they simulate their own commits on
	// scratch state derived from ctx.
	Schedule(ctx *Context) []Decision
}

// New constructs a policy by registry name: "fcfs", "firstfit", "easy",
// "conservative", "sharefirstfit", "sharebackfill", "shareconservative".
// The share configuration applies to the sharing policies and is ignored by
// the baselines.
func New(name string, share ShareConfig) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "firstfit":
		return FirstFit{}, nil
	case "easy":
		return EASY{}, nil
	case "conservative":
		return Conservative{}, nil
	case "sharefirstfit":
		return ShareFirstFit{Config: share}, nil
	case "sharebackfill":
		return ShareBackfill{Config: share}, nil
	case "shareconservative":
		return ShareConservative{Config: share}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// Names returns the registry names of all policies, baselines first.
func Names() []string {
	return []string{
		"fcfs", "firstfit", "easy", "conservative",
		"sharefirstfit", "sharebackfill", "shareconservative",
	}
}

// predictedEnd returns the completion estimate a policy should plan with,
// honoring the inflation-accounting switch.
func predictedEnd(r *RunningJob, share ShareConfig) des.Time {
	if share.Enabled && share.InflationAccounting {
		return r.PredictedEnd
	}
	return r.NominalEnd
}

// fitsMachine reports whether the job could ever run on this machine: node
// request within the cluster and per-node memory within node capacity. The
// simulator rejects unfittable jobs at submission; policies re-check so they
// stay robust against foreign queue contents (and FCFS does not block its
// queue forever behind an impossible head).
func fitsMachine(ctx *Context, j *job.Job) bool {
	cfg := ctx.Cluster.Config()
	return j.Nodes <= cfg.Nodes && j.App.MemPerNodeMB <= cfg.MemoryPerNodeMB
}

// nodeMarks is a per-pass membership set over dense node indices (claimed
// nodes, excluded hosts). A slice beats a map here: scheduling passes probe
// and copy these sets in the hottest loops, and node indices are dense.
type nodeMarks []bool

func newMarks(ctx *Context) nodeMarks { return make(nodeMarks, ctx.Cluster.Size()) }

func (m nodeMarks) clone() nodeMarks {
	out := make(nodeMarks, len(m))
	copy(out, m)
	return out
}

// idleCandidates returns the schedulable idle nodes minus exclusions, in
// locality-compact order when a topology is configured.
func idleCandidates(ctx *Context, exclude nodeMarks) []int {
	var out []int
	for _, ni := range ctx.Cluster.IdleNodes() {
		if !exclude[ni] {
			out = append(out, ni)
		}
	}
	if ctx.Topo != nil {
		out = ctx.Topo.CompactOrder(out)
	}
	return out
}

// pickIdle returns the first n idle node indices and true, or nil and false
// when fewer than n nodes are idle.
func pickIdle(ctx *Context, n int, exclude nodeMarks) ([]int, bool) {
	cand := idleCandidates(ctx, exclude)
	if len(cand) < n {
		return nil, false
	}
	return cand[:n], true
}

// shareCandidate is one co-allocatable node with its pairing quality.
type shareCandidate struct {
	node  int
	score float64
	rate  float64 // estimated progress rate for the incoming job
}

// hostGroup is the co-allocatable node set of one running host job. Grouping
// matters because a parallel job runs at the rate of its slowest node: a
// guest that fully covers a host slows it uniformly and wastes nothing,
// whereas a guest sitting on a fraction of a host's nodes drags the whole
// host down while the uncovered nodes idle along. Sharing strategies
// therefore prefer whole-host coverage.
type hostGroup struct {
	nodes    []shareCandidate
	score    float64 // worst pairing score across the group
	rate     float64 // worst estimated guest rate across the group
	fullHost bool    // group spans every node of the host job
}

// nodeUsableFor reports whether node ni can host j as a co-runner and, if
// so, returns the pairing score (worst complementarity across residents) and
// the guest's estimated progress rate there.
func nodeUsableFor(ctx *Context, j *job.Job, ni int, exclude nodeMarks) (shareCandidate, bool) {
	cfg := ctx.Share
	c := ctx.Cluster
	if exclude[ni] {
		return shareCandidate{}, false
	}
	n := c.Node(ni)
	if n.Idle() || !n.Available() || n.SharingDegree() >= cfg.MaxDegree ||
		n.MemFreeMB() < j.App.MemPerNodeMB {
		return shareCandidate{}, false
	}
	if _, ok := freeLayerOn(c, ni); !ok {
		return shareCandidate{}, false
	}
	residents := ctx.residents(ni)
	if len(residents) == 0 {
		// Node busy but no running record — a foreign allocation; skip.
		return shareCandidate{}, false
	}
	p := ctx.compatFor(j, residents)
	if !p.ok {
		return shareCandidate{}, false
	}
	return shareCandidate{node: ni, score: p.score, rate: p.rate}, true
}

// hostGroupsFor collects the co-allocation host groups for j, best first
// when pairing-aware: full-host coverage ranks above partial, then pairing
// score, then host job ID for determinism.
func hostGroupsFor(ctx *Context, j *job.Job, exclude nodeMarks) []hostGroup {
	cfg := ctx.Share
	if !cfg.Enabled {
		return nil
	}
	var groups []hostGroup
	seen := newMarks(ctx) // nodes already captured via an earlier host
	for _, r := range ctx.Running {
		g := hostGroup{score: 1, rate: 1}
		for _, ni := range r.NodeIDs {
			if seen[ni] {
				continue
			}
			cand, ok := nodeUsableFor(ctx, j, ni, exclude)
			if !ok {
				continue
			}
			seen[ni] = true
			g.nodes = append(g.nodes, cand)
			if cand.score < g.score {
				g.score = cand.score
			}
			if cand.rate < g.rate {
				g.rate = cand.rate
			}
		}
		if len(g.nodes) == 0 {
			continue
		}
		g.fullHost = len(g.nodes) == len(r.NodeIDs)
		groups = append(groups, g)
	}
	if cfg.PairingAware {
		sort.SliceStable(groups, func(a, b int) bool {
			if groups[a].fullHost != groups[b].fullHost {
				return groups[a].fullHost
			}
			if groups[a].score != groups[b].score {
				return groups[a].score > groups[b].score
			}
			return groups[a].nodes[0].node < groups[b].nodes[0].node
		})
	}
	return groups
}

// freeLayerOn returns a fully free layer on node ni. It prefers the highest
// layer index (secondary threads) so co-allocated jobs land on SMT siblings,
// matching the paper's oversubscription mechanism.
func freeLayerOn(c *cluster.Cluster, ni int) (cluster.Layer, bool) {
	tpc := c.Config().ThreadsPerCore
	for l := tpc - 1; l >= 0; l-- {
		if c.LayerFree(ni, cluster.Layer(l)) {
			return cluster.Layer(l), true
		}
	}
	return 0, false
}
