package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestProfileFreeAt(t *testing.T) {
	p := NewProfile(0, 2, []Release{{At: 100, Nodes: 3}, {At: 200, Nodes: 1}})
	cases := []struct {
		t    des.Time
		want int
	}{
		{0, 2}, {99, 2}, {100, 5}, {150, 5}, {200, 6}, {1e9, 6},
	}
	for _, c := range cases {
		if got := p.FreeAt(c.t); got != c.want {
			t.Errorf("FreeAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestProfileReleaseAggregation(t *testing.T) {
	p := NewProfile(0, 0, []Release{{At: 50, Nodes: 1}, {At: 50, Nodes: 2}})
	if got := p.FreeAt(50); got != 3 {
		t.Fatalf("FreeAt(50) = %d, want 3 (same-time releases must aggregate)", got)
	}
}

func TestProfilePastReleaseFoldedIn(t *testing.T) {
	p := NewProfile(100, 1, []Release{{At: 100, Nodes: 2}, {At: 50, Nodes: 1}})
	if got := p.FreeAt(100); got != 4 {
		t.Fatalf("FreeAt(now) = %d, want 4 (releases at/before now fold into base)", got)
	}
}

func TestProfileFindStart(t *testing.T) {
	p := NewProfile(0, 2, []Release{{At: 100, Nodes: 2}, {At: 300, Nodes: 4}})
	// 2 nodes available immediately.
	if at, ok := p.FindStart(2, 50); !ok || at != 0 {
		t.Fatalf("FindStart(2) = %v,%v, want 0,true", at, ok)
	}
	// 4 nodes only after the first release.
	if at, ok := p.FindStart(4, 50); !ok || at != 100 {
		t.Fatalf("FindStart(4) = %v,%v, want 100,true", at, ok)
	}
	// 8 nodes after the second.
	if at, ok := p.FindStart(8, des.Forever); !ok || at != 300 {
		t.Fatalf("FindStart(8) = %v,%v, want 300,true", at, ok)
	}
	// More than the machine ever frees.
	if _, ok := p.FindStart(9, 10); ok {
		t.Fatal("FindStart(9) succeeded beyond final capacity")
	}
	// Zero nodes start immediately.
	if at, ok := p.FindStart(0, 10); !ok || at != 0 {
		t.Fatalf("FindStart(0) = %v,%v", at, ok)
	}
}

func TestProfileFindStartRespectsDips(t *testing.T) {
	// Capacity: 4 now, dips to 1 at t=100 (a reservation), back to 5 at 200.
	p := NewProfile(0, 4, []Release{{At: 200, Nodes: 1}})
	p.Reserve(100, 100, 3)
	// A 2-node job of length 150 cannot start now (dip at 100 breaks it)…
	if at, ok := p.FindStart(2, 150); !ok || at != 200 {
		t.Fatalf("FindStart(2, 150) = %v,%v, want 200,true", at, ok)
	}
	// …but a 50-second job fits before the dip.
	if at, ok := p.FindStart(2, 50); !ok || at != 0 {
		t.Fatalf("FindStart(2, 50) = %v,%v, want 0,true", at, ok)
	}
}

func TestProfileReserve(t *testing.T) {
	p := NewProfile(0, 4, nil)
	p.Reserve(10, 20, 3)
	if got := p.FreeAt(5); got != 4 {
		t.Fatalf("FreeAt(5) = %d", got)
	}
	if got := p.FreeAt(10); got != 1 {
		t.Fatalf("FreeAt(10) = %d", got)
	}
	if got := p.FreeAt(29); got != 1 {
		t.Fatalf("FreeAt(29) = %d", got)
	}
	if got := p.FreeAt(30); got != 4 {
		t.Fatalf("FreeAt(30) = %d", got)
	}
	// Reserving zero nodes is a no-op.
	before := p.Len()
	p.Reserve(15, 5, 0)
	if p.Len() != before {
		t.Fatal("Reserve(0 nodes) mutated the profile")
	}
}

func TestProfileReserveForever(t *testing.T) {
	p := NewProfile(0, 4, nil)
	p.Reserve(10, des.Forever, 2)
	if got := p.FreeAt(1e12); got != 2 {
		t.Fatalf("open-ended reservation not applied: FreeAt(1e12) = %d", got)
	}
}

func TestProfileOverdrawPanics(t *testing.T) {
	p := NewProfile(0, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("overdraw did not panic")
		}
	}()
	p.Reserve(0, 10, 3)
}

func TestProfileFreeAtBeforeStartPanics(t *testing.T) {
	p := NewProfile(100, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAt before start did not panic")
		}
	}()
	p.FreeAt(50)
}

func TestProfileNegativeReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative release did not panic")
		}
	}()
	NewProfile(0, 1, []Release{{At: 10, Nodes: -1}})
}

// Property: after any sequence of valid reservations found via FindStart,
// capacity never goes negative and FindStart results are consistent (the
// returned start admits the reservation).
func TestProperty_ProfileReservationsConsistent(t *testing.T) {
	f := func(jobs []struct {
		N   uint8
		Dur uint16
	}) bool {
		p := NewProfile(0, 8, []Release{{At: 500, Nodes: 4}, {At: 1000, Nodes: 4}})
		if len(jobs) > 12 {
			jobs = jobs[:12]
		}
		for _, jb := range jobs {
			n := int(jb.N)%8 + 1
			d := des.Duration(jb.Dur%2000) + 1
			at, ok := p.FindStart(n, d)
			if !ok {
				return false // 8 ≤ capacity, must always fit eventually
			}
			p.Reserve(at, d, n) // must not panic
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
