package sched

import (
	"fmt"
	"sort"

	"repro/internal/des"
)

// Release is a future capacity increase: nodes whole nodes become free at At.
type Release struct {
	At    des.Time
	Nodes int
}

// Profile is a step function of free whole-node capacity over time, used by
// the backfill policies to plan reservations. Capacity changes only at
// breakpoints: releases from running jobs and starts of planned reservations.
type Profile struct {
	times []des.Time // ascending breakpoints; times[0] is the planning time
	free  []int      // free[i] holds on [times[i], times[i+1])
}

// NewProfile builds a profile starting at now with freeNow free nodes and
// the given future releases. Releases at or before now are folded into the
// initial capacity (their jobs are finishing as we plan).
func NewProfile(now des.Time, freeNow int, releases []Release) *Profile {
	byTime := map[des.Time]int{}
	for _, r := range releases {
		if r.Nodes < 0 {
			panic(fmt.Sprintf("sched: release of %d nodes", r.Nodes))
		}
		if r.At <= now {
			freeNow += r.Nodes
			continue
		}
		byTime[r.At] += r.Nodes
	}
	times := make([]des.Time, 0, len(byTime)+1)
	for t := range byTime {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	p := &Profile{times: []des.Time{now}, free: []int{freeNow}}
	cum := freeNow
	for _, t := range times {
		cum += byTime[t]
		p.times = append(p.times, t)
		p.free = append(p.free, cum)
	}
	return p
}

// FreeAt returns the free capacity at time t (t at or after the profile
// start).
func (p *Profile) FreeAt(t des.Time) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	if i < 0 {
		panic(fmt.Sprintf("sched: FreeAt(%v) before profile start %v", t, p.times[0]))
	}
	return p.free[i]
}

// FindStart returns the earliest time at or after the profile start when n
// nodes are continuously free for duration d. d may be des.Forever for an
// open-ended reservation. The search always succeeds if n never exceeds the
// final (fully drained) capacity; otherwise ok is false.
func (p *Profile) FindStart(n int, d des.Duration) (des.Time, bool) {
	if n <= 0 {
		return p.times[0], true
	}
	for i := range p.times {
		start := p.times[i]
		if p.free[i] < n {
			continue
		}
		end := des.Forever
		if d < des.Forever-start {
			end = start + d
		}
		ok := true
		for k := i + 1; k < len(p.times) && p.times[k] < end; k++ {
			if p.free[k] < n {
				ok = false
				break
			}
		}
		if ok {
			return start, true
		}
	}
	return 0, false
}

// Reserve subtracts n nodes over [at, at+d). It panics if the reservation
// overdraws the profile — callers must have validated with FindStart.
func (p *Profile) Reserve(at des.Time, d des.Duration, n int) {
	if n <= 0 {
		return
	}
	end := des.Forever
	if d < des.Forever-at {
		end = at + d
	}
	p.insertBreak(at)
	if end != des.Forever {
		p.insertBreak(end)
	}
	for i := range p.times {
		if p.times[i] >= at && p.times[i] < end {
			p.free[i] -= n
			if p.free[i] < 0 {
				panic(fmt.Sprintf("sched: reservation overdraws profile at %v (free %d)",
					p.times[i], p.free[i]))
			}
		}
	}
}

// insertBreak adds a breakpoint at t (no-op if present or before start).
func (p *Profile) insertBreak(t des.Time) {
	if t <= p.times[0] {
		return
	}
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if i < len(p.times) && p.times[i] == t {
		return
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = p.free[i-1]
}

// Len returns the number of breakpoints (exported for tests).
func (p *Profile) Len() int { return len(p.times) }
