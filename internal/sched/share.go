package sched

import (
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/job"
)

// ShareFirstFit extends first fit with co-allocation: a queued job may be
// placed onto the free hardware-thread layer of nodes already running a
// compatible job, oversubscribing cores through SMT. Pairing-aware candidate
// ranking (complementary stress vectors first) is what turns oversubscription
// into an efficiency gain instead of uniform slowdown.
type ShareFirstFit struct {
	// Config tunes co-allocation. A disabled config degrades the policy to
	// plain FirstFit.
	Config ShareConfig
}

// Name implements Policy.
func (ShareFirstFit) Name() string { return "sharefirstfit" }

// ShareConfig exposes the policy's sharing configuration to the simulator.
func (p ShareFirstFit) ShareConfig() ShareConfig { return p.Config }

// Schedule implements Policy.
func (p ShareFirstFit) Schedule(ctx *Context) []Decision {
	scoped := *ctx
	scoped.Share = p.Config
	ctx = &scoped
	if !p.Config.Enabled {
		return FirstFit{}.Schedule(ctx)
	}
	var out []Decision
	claimed := newMarks(ctx)
	slots := slotBound(ctx)
	memo := newFailMemo()
	for _, j := range ctx.Queue {
		if slots <= 0 {
			break // machine exhausted; nothing later can start either
		}
		if !fitsMachine(ctx, j) || j.Nodes > slots || memo.knownToFail(j) {
			continue // cheap bounds: cannot possibly fit this pass
		}
		dec, ok := placeShared(ctx, j, claimed)
		if !ok {
			memo.recordFail(j)
			continue // first fit: skip and try the next job
		}
		slots -= len(dec.Placement.Nodes)
		out = append(out, dec)
	}
	return out
}

// failMemo prunes repeated placement attempts within one scheduling pass.
// Capacity only shrinks as a pass claims nodes, so once a placement for an
// application failed at n nodes, every later attempt for the same
// application with ≥ n nodes must fail too.
type failMemo struct {
	minFail map[string]int
}

func newFailMemo() *failMemo { return &failMemo{minFail: map[string]int{}} }

func (m *failMemo) knownToFail(j *job.Job) bool {
	n, ok := m.minFail[j.App.Name]
	return ok && j.Nodes >= n
}

func (m *failMemo) recordFail(j *job.Job) {
	if n, ok := m.minFail[j.App.Name]; !ok || j.Nodes < n {
		m.minFail[j.App.Name] = j.Nodes
	}
}

// slotBound returns an upper bound on the node slots a sharing pass can
// still hand out: idle nodes plus busy nodes with a free layer within the
// sharing degree. It exists so deep queues cost an integer compare per
// hopeless job instead of a full candidate scan. Both terms come from the
// cluster's free-capacity index, so the bound itself costs O(candidates),
// not O(nodes).
func slotBound(ctx *Context) int {
	c := ctx.Cluster
	bound := c.CountIdle()
	for _, ni := range c.BusyFreeLayerNodes() {
		if c.Node(ni).SharingDegree() < ctx.Share.MaxDegree {
			bound++
		}
	}
	return bound
}

// ShareBackfill is co-allocation-aware EASY backfill. The queue head's
// reservation is planned on whole-node capacity exactly as in EASY; backfill
// candidates may additionally be co-allocated onto compatible running jobs.
// Because a co-runner slows its host job — postponing the node's release —
// the policy re-verifies the head's reservation against interference-inflated
// completion estimates before committing any co-allocation
// (Config.InflationAccounting; disabling it is the ablation that breaks the
// EASY no-delay guarantee).
type ShareBackfill struct {
	// Config tunes co-allocation. A disabled config degrades the policy to
	// plain EASY.
	Config ShareConfig
}

// Name implements Policy.
func (ShareBackfill) Name() string { return "sharebackfill" }

// ShareConfig exposes the policy's sharing configuration to the simulator.
func (p ShareBackfill) ShareConfig() ShareConfig { return p.Config }

// Schedule implements Policy.
func (p ShareBackfill) Schedule(ctx *Context) []Decision {
	scoped := *ctx
	scoped.Share = p.Config
	ctx = &scoped
	if !p.Config.Enabled {
		return EASY{}.Schedule(ctx)
	}
	return scheduleShare(ctx, 1)
}

// ShareConservative is co-allocation-aware conservative backfill: every
// blocked job gets a reservation, and a co-allocation is admitted only if
// the interference-inflated release postponements it causes delay none of
// them. It trades ShareBackfill's aggressiveness for bounded queue-jumping,
// exactly as Conservative does for EASY.
type ShareConservative struct {
	// Config tunes co-allocation. A disabled config degrades the policy to
	// plain Conservative.
	Config ShareConfig
}

// Name implements Policy.
func (ShareConservative) Name() string { return "shareconservative" }

// ShareConfig exposes the policy's sharing configuration to the simulator.
func (p ShareConservative) ShareConfig() ShareConfig { return p.Config }

// Schedule implements Policy.
func (p ShareConservative) Schedule(ctx *Context) []Decision {
	scoped := *ctx
	scoped.Share = p.Config
	ctx = &scoped
	if !p.Config.Enabled {
		return Conservative{}.Schedule(ctx)
	}
	return scheduleShare(ctx, len(ctx.Queue))
}

// scheduleShare is the sharing-backfill skeleton: reservations for the
// first maxReservations blocked jobs on whole-node capacity, immediate
// starts (exclusive or co-allocated) for everything that provably delays no
// reservation.
func scheduleShare(ctx *Context, maxReservations int) []Decision {
	var out []Decision
	claimed := newMarks(ctx)
	// endOverride records release postponements caused by co-allocations
	// committed in this pass.
	endOverride := map[cluster.JobID]des.Time{}

	profile := profileWith(ctx, claimed, endOverride)
	var shadows []des.Time // reservation start times, in queue order
	slots := slotBound(ctx)
	memo := newFailMemo()

	for _, j := range ctx.Queue {
		if !fitsMachine(ctx, j) {
			continue
		}
		blockedBefore := len(shadows) > 0
		if blockedBefore && slots <= 0 && len(shadows) >= maxReservations {
			break // no start slots and no reservation budget left
		}
		if blockedBefore && (j.Nodes > slots || memo.knownToFail(j)) {
			// Cannot start this pass; it may still deserve a reservation.
			if len(shadows) < maxReservations {
				if start, ok := profile.FindStart(j.Nodes, j.ReqWalltime); ok {
					shadows = append(shadows, start)
					profile.Reserve(start, j.ReqWalltime, j.Nodes)
				}
			}
			continue
		}

		if dec, ok := placeGuarded(ctx, j, claimed, endOverride, shadows); ok {
			// Idle nodes consumed now must not break any reservation: the
			// job (or its placement's idle part) must fit in the reserved
			// profile for its whole walltime starting immediately.
			idleCount := countIdleNodes(ctx.Cluster, dec.Placement)
			if idleCount > 0 {
				start, fits := profile.FindStart(idleCount, j.ReqWalltime)
				if !fits || start > ctx.Now {
					if !blockedBefore || len(shadows) < maxReservations {
						if s, ok := profile.FindStart(j.Nodes, j.ReqWalltime); ok {
							shadows = append(shadows, s)
							profile.Reserve(s, j.ReqWalltime, j.Nodes)
						}
					}
					continue
				}
				profile.Reserve(ctx.Now, j.ReqWalltime, idleCount)
			}
			out = append(out, dec)
			commitShare(ctx, dec, claimed, endOverride)
			slots -= len(dec.Placement.Nodes)
			continue
		}

		// Blocked: plan a reservation while the budget allows.
		if len(shadows) < maxReservations {
			if start, ok := profile.FindStart(j.Nodes, j.ReqWalltime); ok {
				shadows = append(shadows, start)
				profile.Reserve(start, j.ReqWalltime, j.Nodes)
			}
			continue
		}
		memo.recordFail(j)
	}
	return out
}

// placeGuarded attempts a sharing-aware placement for j. With inflation
// accounting on, a co-allocation is rejected if slowing the host jobs would
// postpone a node release past any planned reservation start in shadows.
// Rejected host nodes are excluded and the placement is retried, so a guest
// can still land on hosts with walltime slack.
func placeGuarded(ctx *Context, j *job.Job, claimed nodeMarks,
	endOverride map[cluster.JobID]des.Time, shadows []des.Time) (Decision, bool) {

	excluded := claimed.clone()
	for attempt := 0; attempt <= ctx.Cluster.Size(); attempt++ {
		dec, ok := placeShared(ctx, j, excluded.clone())
		if !ok {
			return Decision{}, false
		}
		if !dec.Shared || len(shadows) == 0 || !ctx.Share.InflationAccounting {
			return dec, true
		}
		// Find hosts whose postponed release would break a reservation:
		// their release was due at or before some shadow time and the
		// co-allocation pushes it past.
		offender := -1
	scan:
		for _, np := range dec.Placement.Nodes {
			for _, r := range ctx.residents(np.Node) {
				oldEnd := effectiveEnd(r, ctx.Share, endOverride)
				newEnd := inflatedEnd(ctx, r, j, endOverride)
				if newEnd <= oldEnd {
					continue
				}
				for _, shadow := range shadows {
					if oldEnd <= shadow && newEnd > shadow {
						offender = np.Node
						break scan
					}
				}
			}
		}
		if offender == -1 {
			return dec, true
		}
		excluded[offender] = true
	}
	return Decision{}, false
}

// commitShare records the local effects of a decision within this scheduling
// pass: claimed nodes and postponed host releases.
func commitShare(ctx *Context, dec Decision, claimed nodeMarks,
	endOverride map[cluster.JobID]des.Time) {
	for _, np := range dec.Placement.Nodes {
		claimed[np.Node] = true
		if dec.Shared {
			for _, r := range ctx.residents(np.Node) {
				newEnd := inflatedEnd(ctx, r, dec.Job, endOverride)
				if cur, ok := endOverride[r.Job.ID]; !ok || newEnd > cur {
					endOverride[r.Job.ID] = newEnd
				}
			}
		}
	}
}

// profileWith rebuilds the whole-node capacity profile applying release
// postponements from this pass's co-allocations.
func profileWith(ctx *Context, claimed nodeMarks,
	endOverride map[cluster.JobID]des.Time) *Profile {

	freeNow := 0
	for _, ni := range ctx.Cluster.IdleNodes() {
		if !claimed[ni] {
			freeNow++
		}
	}
	releaseAt := map[int]des.Time{}
	for _, r := range ctx.Running {
		end := effectiveEnd(r, ctx.Share, endOverride)
		for _, ni := range r.NodeIDs {
			if end > releaseAt[ni] {
				releaseAt[ni] = end
			}
		}
	}
	byTime := map[des.Time]int{}
	for _, end := range releaseAt {
		byTime[end]++
	}
	releases := make([]Release, 0, len(byTime))
	for t, n := range byTime {
		releases = append(releases, Release{At: t, Nodes: n})
	}
	return NewProfile(ctx.Now, freeNow, releases)
}

// effectiveEnd returns a running job's planning end time, honoring both the
// inflation-accounting switch and any postponement from this pass.
func effectiveEnd(r *RunningJob, share ShareConfig, endOverride map[cluster.JobID]des.Time) des.Time {
	end := predictedEnd(r, share)
	if o, ok := endOverride[r.Job.ID]; ok && o > end {
		end = o
	}
	return end
}

// inflatedEnd estimates when host r will release its nodes if job j is
// co-allocated beside it: the host's remaining requested work divided by its
// new (slower) progress rate.
func inflatedEnd(ctx *Context, r *RunningJob, j *job.Job, endOverride map[cluster.JobID]des.Time) des.Time {
	oldEnd := effectiveEnd(r, ctx.Share, endOverride)
	oldRate := r.Rate
	if oldRate <= 0 {
		oldRate = 1
	}
	remaining := float64(oldEnd-ctx.Now) * oldRate
	newRate := ctx.hostRateWith(r, j)
	if newRate < oldRate {
		// Synchronized parallel semantics: the host runs at the slower of
		// its current rate and the newly contended node's rate.
		oldRate = newRate
	}
	if oldRate <= 0 {
		oldRate = 1e-3
	}
	return ctx.Now + des.Duration(remaining/oldRate)
}

// placeShared builds a sharing-aware placement for j from co-allocation
// host groups and idle nodes, ordered by the PreferShared setting. Whole
// host groups are taken before partial ones so guests cover hosts fully
// whenever possible (see hostGroup). claimed is updated with the nodes used.
func placeShared(ctx *Context, j *job.Job, claimed nodeMarks) (Decision, bool) {

	groups := hostGroupsFor(ctx, j, claimed)
	idle := idleCandidates(ctx, claimed)

	type slot struct {
		node   int
		shared bool
		rate   float64
	}
	var slots []slot
	need := func() int { return j.Nodes - len(slots) }
	takenGroup := make([]bool, len(groups))

	// Whole groups that fit entirely within the remaining need.
	addWholeGroups := func() {
		for gi, g := range groups {
			if takenGroup[gi] || len(g.nodes) > need() {
				continue
			}
			for _, c := range g.nodes {
				slots = append(slots, slot{c.node, true, c.rate})
			}
			takenGroup[gi] = true
		}
	}
	// Partial fills from remaining groups (last resort: partially covering
	// a host wastes its uncovered nodes).
	addPartialGroups := func() {
		for gi, g := range groups {
			if takenGroup[gi] {
				continue
			}
			for _, c := range g.nodes {
				if need() == 0 {
					return
				}
				slots = append(slots, slot{c.node, true, c.rate})
			}
			takenGroup[gi] = true
		}
	}
	addIdle := func() {
		for _, ni := range idle {
			if need() == 0 {
				return
			}
			slots = append(slots, slot{ni, false, 1})
		}
	}
	if ctx.Share.PreferShared {
		addWholeGroups()
		addIdle()
		addPartialGroups()
	} else {
		addIdle()
		addWholeGroups()
		addPartialGroups()
	}
	if len(slots) < j.Nodes {
		return Decision{}, false
	}
	slots = slots[:j.Nodes]

	p := cluster.Placement{Job: j.ID}
	rate := 1.0
	shared := false
	for _, s := range slots {
		layer := cluster.PrimaryLayer
		if s.shared {
			l, ok := freeLayerOn(ctx.Cluster, s.node)
			if !ok {
				return Decision{}, false // raced within pass; should not happen
			}
			layer = l
			shared = true
			if s.rate < rate {
				rate = s.rate
			}
		}
		p.Nodes = append(p.Nodes, cluster.NodePlacement{
			Node:     s.node,
			Threads:  ctx.Cluster.LayerThreads(s.node, layer),
			MemoryMB: j.App.MemPerNodeMB,
		})
		claimed[s.node] = true
	}
	return Decision{Job: j, Placement: p, Shared: shared, EstimatedRate: rate}, true
}

// countIdleNodes counts the placement's nodes that are currently idle.
func countIdleNodes(c *cluster.Cluster, p cluster.Placement) int {
	k := 0
	for _, np := range p.Nodes {
		if c.Node(np.Node).Idle() {
			k++
		}
	}
	return k
}
