package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/job"
)

// buildRandomState constructs an arbitrary mid-run scheduling state from
// fuzz bytes: some running jobs on layer or exclusive placements, some
// queued jobs, varying sizes and apps.
func buildRandomState(t *testing.T, seed []byte) *Context {
	t.Helper()
	c := cluster.New(cluster.Config{
		Nodes: 12, CoresPerNode: 4, ThreadsPerCore: 2, MemoryPerNodeMB: 1000,
	})
	cat := app.Catalogue()
	next := byte(0)
	take := func() int {
		if len(seed) == 0 {
			next++
			return int(next)
		}
		v := int(seed[0])
		seed = seed[1:]
		return v
	}

	var running []*RunningJob
	id := cluster.JobID(1000)
	// Up to 6 running jobs on random free node prefixes.
	for k := 0; k < take()%7; k++ {
		nodes := 1 + take()%4
		var free []int
		for ni := 0; ni < c.Size() && len(free) < nodes; ni++ {
			if c.Node(ni).Idle() {
				free = append(free, ni)
			}
		}
		if len(free) < nodes {
			break
		}
		a := cat[take()%len(cat)]
		id++
		j := &job.Job{ID: id, Name: "run", App: a, Nodes: nodes,
			ReqWalltime: des.Duration(1000 + take()), TrueRuntime: 900, Submit: 0}
		var p cluster.Placement
		exclusive := take()%2 == 0
		if exclusive {
			p = c.ExclusivePlacement(id, free, a.MemPerNodeMB%900+50)
		} else {
			p = c.LayerPlacement(id, free, cluster.PrimaryLayer, a.MemPerNodeMB%900+50)
		}
		if err := c.Allocate(p); err != nil {
			t.Fatalf("setup allocation failed: %v", err)
		}
		j.Start(0)
		end := des.Time(500 + take()*7)
		running = append(running, &RunningJob{
			Job: j, NodeIDs: free, Exclusive: exclusive,
			NominalEnd: end, PredictedEnd: end, Rate: 1,
		})
	}

	var queue []*job.Job
	for k := 0; k < 2+take()%10; k++ {
		a := cat[take()%len(cat)]
		wall := des.Duration(300 + 100*(take()%20))
		id++
		queue = append(queue, &job.Job{
			ID: id, Name: "q", App: a, Nodes: 1 + take()%13, // may exceed machine
			ReqWalltime: wall, TrueRuntime: wall, Submit: des.Time(take()),
		})
	}

	return &Context{
		Now:     des.Time(100),
		Cluster: c,
		Queue:   queue,
		Running: running,
		Inter:   interference.Default(),
		Share:   DefaultShareConfig(),
	}
}

// Property (all policies): on any reachable state, every decision batch is
// (a) for jobs actually in the queue, (b) without duplicate job starts,
// (c) committable as-is against the live cluster, and (d) sized exactly to
// each job's node request.
func TestProperty_DecisionsAlwaysCommittable(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := New(name, DefaultShareConfig())
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed []byte) bool {
				ctx := buildRandomState(t, seed)
				queued := map[cluster.JobID]bool{}
				for _, j := range ctx.Queue {
					queued[j.ID] = true
				}
				decisions := pol.Schedule(ctx)
				seen := map[cluster.JobID]bool{}
				for _, d := range decisions {
					if !queued[d.Job.ID] {
						t.Logf("%s started non-queued job %d", name, d.Job.ID)
						return false
					}
					if seen[d.Job.ID] {
						t.Logf("%s started job %d twice", name, d.Job.ID)
						return false
					}
					seen[d.Job.ID] = true
					if len(d.Placement.Nodes) != d.Job.Nodes {
						t.Logf("%s sized job %d at %d nodes, requested %d",
							name, d.Job.ID, len(d.Placement.Nodes), d.Job.Nodes)
						return false
					}
					if d.EstimatedRate <= 0 || d.EstimatedRate > 1 {
						t.Logf("%s estimated rate %g", name, d.EstimatedRate)
						return false
					}
					if err := ctx.Cluster.Allocate(d.Placement); err != nil {
						t.Logf("%s produced uncommittable placement: %v", name, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: Schedule must not mutate the cluster (it simulates commits on
// scratch state only).
func TestProperty_ScheduleIsPure(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := New(name, DefaultShareConfig())
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed []byte) bool {
				ctx := buildRandomState(t, seed)
				before := ctx.Cluster.BusyThreads()
				busyBefore := ctx.Cluster.BusyNodes()
				pol.Schedule(ctx)
				return ctx.Cluster.BusyThreads() == before &&
					ctx.Cluster.BusyNodes() == busyBefore
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
