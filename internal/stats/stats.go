// Package stats provides the small statistical toolkit the evaluation needs:
// moments, percentiles, confidence intervals, and histograms. It exists so
// experiment code never hand-rolls these (and so they are tested once).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; 0 for fewer than 2 samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It panics on an empty slice or
// out-of-range p; percentiles of nothing are a caller bug.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile(%g)", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean; 0 for fewer than 2 samples.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N                  int
	Mean, Stddev, CI95 float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary; the zero Summary is returned for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		CI95:   CI95(xs),
		Min:    xs[0],
		Max:    xs[0],
		P50:    Percentile(xs, 50),
		P90:    Percentile(xs, 90),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the counts. Values outside the range clamp into the edge buckets. It
// panics if n ≤ 0 or max ≤ min.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Histogram with %d buckets", n))
	}
	if max <= min {
		panic(fmt.Sprintf("stats: Histogram range [%g, %g]", min, max))
	}
	counts := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts
}

// LinearFit returns the least-squares slope and intercept of y over x.
// It panics when the lengths differ or fewer than 2 points are given.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LinearFit length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}

// RelChange returns (b−a)/a, the relative change from a to b, as used for
// the paper's "+19%" style comparisons. It panics when a is 0.
func RelChange(a, b float64) float64 {
	if a == 0 {
		panic("stats: RelChange from zero baseline")
	}
	return (b - a) / a
}
