package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean wrong")
	}
}

func TestVarianceAndStddev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of single sample != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 32.0/7.0) {
		t.Fatalf("Variance = %g", Variance(xs))
	}
	if !almost(Stddev(xs), math.Sqrt(32.0/7.0)) {
		t.Fatalf("Stddev = %g", Stddev(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single-sample percentile = %g", got)
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Median = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over100":  func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of one sample != 0")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1, stddev ≈ 0.5025
	}
	ci := CI95(xs)
	want := 1.96 * Stddev(xs) / 10
	if !almost(ci, want) {
		t.Fatalf("CI95 = %g, want %g", ci, want)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("Summarize(nil) not zero")
	}
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Mean, 3) || !almost(s.P50, 3) {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -1, 2}
	h := Histogram(xs, 2, 0, 1)
	// Bucket 0: 0.1, 0.2, -1 (clamped); bucket 1: 0.5, 0.9, 2 (clamped).
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Histogram(0 buckets) did not panic")
			}
		}()
		Histogram(xs, 0, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Histogram bad range did not panic")
			}
		}()
		Histogram(xs, 2, 1, 1)
	}()
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2) || !almost(intercept, 1) {
		t.Fatalf("fit = %g, %g", slope, intercept)
	}
	// Degenerate x: slope 0, intercept mean(y).
	slope, intercept = LinearFit([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || !almost(intercept, 2) {
		t.Fatalf("degenerate fit = %g, %g", slope, intercept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"short":    func() { LinearFit([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRelChange(t *testing.T) {
	if !almost(RelChange(100, 119), 0.19) {
		t.Fatal("RelChange wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RelChange(0, x) did not panic")
		}
	}()
	RelChange(0, 1)
}

// Property: percentile is monotone in p and bounded by min/max.
func TestProperty_PercentileMonotone(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		s := Summarize(xs)
		return pa <= pb+1e-9 && pa >= s.Min-1e-9 && pb <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestProperty_MeanBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
