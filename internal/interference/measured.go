package interference

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/app"
)

// Load is one co-located job's contribution to a node: its application name
// (for measured-pair lookup) and its effective stress vector (possibly
// adjusted for placement spread by the simulator).
type Load struct {
	App    string
	Stress app.StressVector
}

// MeasuredPair is an empirically measured co-run result: the progress rates
// of apps A and B when co-located on one node via SMT. Order matters for
// the rates; the table stores both directions.
type MeasuredPair struct {
	A, B         string
	RateA, RateB float64
}

// Validate checks a measurement.
func (p MeasuredPair) Validate() error {
	if p.A == "" || p.B == "" {
		return fmt.Errorf("interference: measured pair with empty app name (%+v)", p)
	}
	if p.RateA <= 0 || p.RateA > 1 || p.RateB <= 0 || p.RateB > 1 {
		return fmt.Errorf("interference: measured rates (%g, %g) outside (0,1]", p.RateA, p.RateB)
	}
	return nil
}

type pairKey struct{ a, b string }

// SetMeasured installs empirical pair measurements. When a two-job
// co-location matches a measured pair by application name, the measured
// rates replace the analytic model (measurement subsumes whatever effects it
// was taken under); co-locations of three or more jobs, or pairs without a
// measurement, fall back to the analytic model. Calling SetMeasured again
// replaces the table; nil clears it.
func (m *Model) SetMeasured(pairs []MeasuredPair) error {
	if pairs == nil {
		m.measured = nil
		return nil
	}
	table := make(map[pairKey][2]float64, 2*len(pairs))
	for _, p := range pairs {
		if err := p.Validate(); err != nil {
			return err
		}
		table[pairKey{p.A, p.B}] = [2]float64{p.RateA, p.RateB}
		table[pairKey{p.B, p.A}] = [2]float64{p.RateB, p.RateA}
	}
	m.measured = table
	return nil
}

// HasMeasured reports whether a measured table is installed.
func (m *Model) HasMeasured() bool { return len(m.measured) > 0 }

// NamedRates returns per-job progress rates like NodeRates, but consults the
// measured-pair table first for two-job co-locations.
func (m *Model) NamedRates(loads []Load) []float64 {
	if len(loads) == 2 && m.measured != nil {
		if r, ok := m.measured[pairKey{loads[0].App, loads[1].App}]; ok {
			return []float64{r[0], r[1]}
		}
	}
	vecs := make([]app.StressVector, len(loads))
	for i, l := range loads {
		vecs[i] = l.Stress
	}
	return m.NodeRates(vecs)
}

// ParseCoRunCSV reads measured pairs from CSV rows of the form
//
//	appA,appB,rateA,rateB
//
// A '#'-prefixed first field marks a comment row; a header row with
// non-numeric rates is skipped.
func ParseCoRunCSV(r io.Reader) ([]MeasuredPair, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var out []MeasuredPair
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("interference: corun csv: %w", err)
		}
		line++
		if len(rec) != 4 {
			return nil, fmt.Errorf("interference: corun csv row %d has %d fields, want 4", line, len(rec))
		}
		ra, errA := strconv.ParseFloat(rec[2], 64)
		rb, errB := strconv.ParseFloat(rec[3], 64)
		if errA != nil || errB != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("interference: corun csv row %d: non-numeric rates %q, %q",
				line, rec[2], rec[3])
		}
		p := MeasuredPair{A: rec[0], B: rec[1], RateA: ra, RateB: rb}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("interference: corun csv row %d: %w", line, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ExportCoRunCSV writes the analytic model's pairwise rates for the given
// applications in ParseCoRunCSV's format — the template a site fills in with
// real measurements.
func (m *Model) ExportCoRunCSV(w io.Writer, models []app.Model) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"appA", "appB", "rateA", "rateB"}); err != nil {
		return err
	}
	sorted := append([]app.Model(nil), models...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, a := range sorted {
		for _, b := range sorted[i:] {
			ra, rb := m.PairRates(a.Stress, b.Stress)
			if err := cw.Write([]string{
				a.Name, b.Name,
				strconv.FormatFloat(ra, 'f', 4, 64),
				strconv.FormatFloat(rb, 'f', 4, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
