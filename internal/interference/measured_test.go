package interference

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/app"
)

func namedLoads(names ...string) []Load {
	out := make([]Load, len(names))
	for i, n := range names {
		m, err := app.ByName(n)
		if err != nil {
			panic(err)
		}
		out[i] = Load{App: m.Name, Stress: m.Stress}
	}
	return out
}

func TestSetMeasuredOverridesPairs(t *testing.T) {
	m := Default()
	if m.HasMeasured() {
		t.Fatal("fresh model reports measurements")
	}
	if err := m.SetMeasured([]MeasuredPair{
		{A: "minife", B: "minimd", RateA: 0.61, RateB: 0.62},
	}); err != nil {
		t.Fatal(err)
	}
	if !m.HasMeasured() {
		t.Fatal("measurements not installed")
	}
	rates := m.NamedRates(namedLoads("minife", "minimd"))
	if rates[0] != 0.61 || rates[1] != 0.62 {
		t.Fatalf("measured rates not used: %v", rates)
	}
	// Reversed order swaps the rates.
	rates = m.NamedRates(namedLoads("minimd", "minife"))
	if rates[0] != 0.62 || rates[1] != 0.61 {
		t.Fatalf("reversed measured rates wrong: %v", rates)
	}
	// Unmeasured pairs fall back to the analytic model.
	analytic := m.NodeRates([]app.StressVector{
		namedLoads("amg")[0].Stress, namedLoads("umt")[0].Stress,
	})
	named := m.NamedRates(namedLoads("amg", "umt"))
	if named[0] != analytic[0] || named[1] != analytic[1] {
		t.Fatalf("fallback mismatch: %v vs %v", named, analytic)
	}
	// Three-way co-locations always use the analytic model.
	three := m.NamedRates(namedLoads("minife", "minimd", "amg"))
	if three[0] == 0.61 {
		t.Fatal("measured pair applied to a three-way co-location")
	}
	// Clearing restores pure analytic behaviour.
	if err := m.SetMeasured(nil); err != nil {
		t.Fatal(err)
	}
	if m.HasMeasured() {
		t.Fatal("measurements not cleared")
	}
}

func TestSetMeasuredValidation(t *testing.T) {
	m := Default()
	bad := [][]MeasuredPair{
		{{A: "", B: "x", RateA: 0.5, RateB: 0.5}},
		{{A: "a", B: "b", RateA: 0, RateB: 0.5}},
		{{A: "a", B: "b", RateA: 0.5, RateB: 1.5}},
	}
	for i, pairs := range bad {
		if err := m.SetMeasured(pairs); err == nil {
			t.Errorf("bad measurement %d accepted", i)
		}
	}
}

func TestCoRunCSVRoundTrip(t *testing.T) {
	m := Default()
	models := app.Catalogue()[:4]
	var buf bytes.Buffer
	if err := m.ExportCoRunCSV(&buf, models); err != nil {
		t.Fatal(err)
	}
	pairs, err := ParseCoRunCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4 apps → C(4,2)+4 = 10 ordered-unique pairs.
	if len(pairs) != 10 {
		t.Fatalf("parsed %d pairs, want 10", len(pairs))
	}
	// Installing the exported analytic matrix must reproduce the analytic
	// rates (up to the 4-decimal CSV rounding).
	if err := m.SetMeasured(pairs); err != nil {
		t.Fatal(err)
	}
	a, b := models[0], models[1]
	ra, rb := m.PairRates(a.Stress, b.Stress)
	named := m.NamedRates([]Load{{App: a.Name, Stress: a.Stress}, {App: b.Name, Stress: b.Stress}})
	if diff := named[0] - ra; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("exported matrix diverges from analytic: %g vs %g", named[0], ra)
	}
	_ = rb
}

func TestParseCoRunCSVErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields": "a,b,0.5\n",
		"bad rate":     "h1,h2,x,y\na,b,zz,0.5\n",
		"out of range": "appA,appB,rateA,rateB\na,b,1.5,0.5\n",
	}
	for name, input := range cases {
		if _, err := ParseCoRunCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Header and comments are tolerated.
	pairs, err := ParseCoRunCSV(strings.NewReader(
		"appA,appB,rateA,rateB\n# comment\na,b,0.5,0.6\n"))
	if err != nil || len(pairs) != 1 {
		t.Fatalf("header/comment handling: %v, %d pairs", err, len(pairs))
	}
}

// End-to-end: a pessimistic measured matrix must change scheduling — with
// every pair measured at the minimum rate, sharing buys nothing and the
// co-allocation guard plans accordingly.
func TestMeasuredMatrixReachesScheduling(t *testing.T) {
	m := Default()
	var pairs []MeasuredPair
	for _, a := range app.Names() {
		for _, b := range app.Names() {
			pairs = append(pairs, MeasuredPair{A: a, B: b, RateA: 0.10, RateB: 0.10})
		}
	}
	if err := m.SetMeasured(pairs); err != nil {
		t.Fatal(err)
	}
	rates := m.NamedRates(namedLoads("minife", "minimd"))
	if rates[0] != 0.10 || rates[1] != 0.10 {
		t.Fatalf("pessimistic matrix not honored: %v", rates)
	}
}
