package interference

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
)

func vec(cpu, bw, cache, net float64) app.StressVector {
	return app.StressVector{cpu, bw, cache, net}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{SMTBoost: 0.9, MinRate: 0.1},
		{SMTBoost: 1.2, MinRate: 0},
		{SMTBoost: 1.2, MinRate: 1.5},
		{SMTBoost: 1.2, MinRate: 0.1, Wastage: [app.NumResources]float64{-1, 0, 0, 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestNewPanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New(Params{})
}

func TestSoloJobRatesOne(t *testing.T) {
	m := Default()
	rates := m.NodeRates([]app.StressVector{vec(0.9, 0.9, 0.9, 0.9)})
	if len(rates) != 1 || rates[0] != 1 {
		t.Fatalf("solo rates = %v, want [1]", rates)
	}
}

func TestEmptyLoads(t *testing.T) {
	if got := Default().NodeRates(nil); got != nil {
		t.Fatalf("NodeRates(nil) = %v, want nil", got)
	}
	if got := Default().Throughput(nil); got != 0 {
		t.Fatalf("Throughput(nil) = %v, want 0", got)
	}
}

func TestLightPairUnslowed(t *testing.T) {
	m := Default()
	a, b := vec(0.3, 0.2, 0.2, 0.1), vec(0.2, 0.3, 0.1, 0.2)
	ra, rb := m.PairRates(a, b)
	if ra != 1 || rb != 1 {
		t.Fatalf("light pair rates = %g, %g, want 1, 1 (no resource contended)", ra, rb)
	}
}

func TestComplementaryPairBeatsSameBottleneckPair(t *testing.T) {
	m := Default()
	compute := vec(0.92, 0.35, 0.40, 0.25) // minimd-like
	membw := vec(0.45, 0.90, 0.55, 0.30)   // minife-like

	complementary := m.Throughput([]app.StressVector{compute, membw})
	sameBW := m.Throughput([]app.StressVector{membw, membw})
	sameCPU := m.Throughput([]app.StressVector{compute, compute})

	if complementary <= sameBW || complementary <= sameCPU {
		t.Fatalf("complementary throughput %g not above same-bottleneck pairs (bw %g, cpu %g)",
			complementary, sameBW, sameCPU)
	}
	// The complementary pair is the paper's motivating case: it must deliver
	// a clear win over dedicated nodes.
	if complementary < 1.3 {
		t.Fatalf("complementary pair throughput = %g, want ≥ 1.3", complementary)
	}
	// Two bandwidth-saturating jobs must NOT gain from sharing.
	if sameBW > 1.1 {
		t.Fatalf("same-bandwidth pair throughput = %g, want ≈1 or below", sameBW)
	}
}

func TestCacheThrashLoses(t *testing.T) {
	m := Default()
	thrash := vec(0.4, 0.5, 0.95, 0.2)
	tp := m.Throughput([]app.StressVector{thrash, thrash})
	if tp >= 1 {
		t.Fatalf("cache-thrashing pair throughput = %g, want < 1 (sharing must be able to lose)", tp)
	}
}

func TestSMTBoostHelpsComputePairs(t *testing.T) {
	compute := vec(0.9, 0.2, 0.2, 0.1)
	withSMT := Default()
	noSMT := New(Params{SMTBoost: 1.0, Wastage: DefaultParams().Wastage, MinRate: 0.05})
	a := withSMT.Throughput([]app.StressVector{compute, compute})
	b := noSMT.Throughput([]app.StressVector{compute, compute})
	if a <= b {
		t.Fatalf("SMT boost did not help compute pair: with=%g without=%g", a, b)
	}
}

func TestPairRatesAsymmetricSensitivity(t *testing.T) {
	m := Default()
	// A bandwidth-hungry job suffers more from bandwidth contention than a
	// bandwidth-light co-runner does.
	heavy := vec(0.3, 0.95, 0.3, 0.2)
	light := vec(0.6, 0.40, 0.3, 0.2)
	rh, rl := m.PairRates(heavy, light)
	if rh >= rl {
		t.Fatalf("bandwidth-heavy job rate %g not below light co-runner rate %g", rh, rl)
	}
}

func TestMinRateFloor(t *testing.T) {
	p := DefaultParams()
	p.MinRate = 0.2
	m := New(p)
	// Four saturating loads → extreme contention, rates must floor.
	sat := vec(1, 1, 1, 1)
	rates := m.NodeRates([]app.StressVector{sat, sat, sat, sat})
	for _, r := range rates {
		if r < 0.2 {
			t.Fatalf("rate %g below MinRate floor", r)
		}
	}
}

func TestCoRunMatrix(t *testing.T) {
	m := Default()
	models := app.Catalogue()
	mat := m.CoRunMatrix(models)
	if len(mat) != len(models) {
		t.Fatalf("matrix rows = %d, want %d", len(mat), len(models))
	}
	for i := range mat {
		if len(mat[i]) != len(models) {
			t.Fatalf("matrix row %d length = %d", i, len(mat[i]))
		}
		for j, r := range mat[i] {
			if r <= 0 || r > 1 {
				t.Fatalf("matrix[%d][%d] = %g outside (0,1]", i, j, r)
			}
		}
	}
	// The matrix is not symmetric in general (rates are per-job), but
	// diagonal entries pair an app with itself so both jobs see the same
	// rate; spot-check one well-known ordering: minimd co-run with minife
	// beats minife co-run with milc (bandwidth clash).
	idx := map[string]int{}
	for i, md := range models {
		idx[md.Name] = i
	}
	if mat[idx["minimd"]][idx["minife"]] <= mat[idx["minife"]][idx["milc"]] {
		t.Fatalf("expected minimd|minife rate (%g) > minife|milc rate (%g)",
			mat[idx["minimd"]][idx["minife"]], mat[idx["minife"]][idx["milc"]])
	}
}

func TestPairGainSign(t *testing.T) {
	m := Default()
	compute := vec(0.92, 0.35, 0.40, 0.25)
	membw := vec(0.45, 0.90, 0.55, 0.30)
	thrash := vec(0.4, 0.5, 0.95, 0.2)
	if g := m.PairGain(compute, membw); g <= 0 {
		t.Fatalf("complementary PairGain = %g, want > 0", g)
	}
	if g := m.PairGain(thrash, thrash); g >= 0 {
		t.Fatalf("thrashing PairGain = %g, want < 0", g)
	}
}

// Property: rates are always in (0, 1], and adding a co-runner never helps
// an existing job (monotonicity of contention).
func TestProperty_RateBoundsAndMonotonicity(t *testing.T) {
	m := Default()
	gen := func(a, b, c, d uint8) app.StressVector {
		return vec(float64(a)/255, float64(b)/255, float64(c)/255, float64(d)/255)
	}
	f := func(raw [3][4]uint8) bool {
		v0 := gen(raw[0][0], raw[0][1], raw[0][2], raw[0][3])
		v1 := gen(raw[1][0], raw[1][1], raw[1][2], raw[1][3])
		v2 := gen(raw[2][0], raw[2][1], raw[2][2], raw[2][3])

		two := m.NodeRates([]app.StressVector{v0, v1})
		three := m.NodeRates([]app.StressVector{v0, v1, v2})
		for _, r := range append(append([]float64{}, two...), three...) {
			if r <= 0 || r > 1 || math.IsNaN(r) {
				return false
			}
		}
		// Job 0's rate must not improve when v2 joins.
		const eps = 1e-12
		return three[0] <= two[0]+eps && three[1] <= two[1]+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: rates are permutation-consistent — permuting the load order
// permutes the rates identically.
func TestProperty_PermutationConsistency(t *testing.T) {
	m := Default()
	f := func(raw [2][4]uint8) bool {
		a := vec(float64(raw[0][0])/255, float64(raw[0][1])/255, float64(raw[0][2])/255, float64(raw[0][3])/255)
		b := vec(float64(raw[1][0])/255, float64(raw[1][1])/255, float64(raw[1][2])/255, float64(raw[1][3])/255)
		r1 := m.NodeRates([]app.StressVector{a, b})
		r2 := m.NodeRates([]app.StressVector{b, a})
		return r1[0] == r2[1] && r1[1] == r2[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The EXPERIMENTS.md claim that orderings are insensitive to calibration:
// perturb every model constant by ±20% and require the qualitative
// relationships to survive — complementary pairs beat same-bottleneck
// pairs, and bandwidth-saturating pairs never profit from sharing.
func TestCalibrationInsensitiveOrderings(t *testing.T) {
	compute := vec(0.92, 0.35, 0.40, 0.25)
	membw := vec(0.45, 0.90, 0.55, 0.30)
	for _, scale := range []float64{0.8, 1.0, 1.2} {
		for _, boostScale := range []float64{0.8, 1.0, 1.2} {
			p := DefaultParams()
			p.SMTBoost = 1 + (p.SMTBoost-1)*boostScale
			for r := range p.Wastage {
				p.Wastage[r] *= scale
			}
			m := New(p)
			complementary := m.Throughput([]app.StressVector{compute, membw})
			sameBW := m.Throughput([]app.StressVector{membw, membw})
			if complementary <= sameBW {
				t.Fatalf("scale=%g boost=%g: complementary %g ≤ sameBW %g",
					scale, boostScale, complementary, sameBW)
			}
			if sameBW > 1.15 {
				t.Fatalf("scale=%g boost=%g: bandwidth pair profits (%g)",
					scale, boostScale, sameBW)
			}
		}
	}
}
