// Package interference converts the resource demands of co-located jobs into
// per-job progress rates.
//
// Model. Each job on a node runs one rank per core on its own hardware-thread
// layer (see internal/cluster). Its application's stress vector d states the
// fraction of each node resource the job demands. For a co-location set
// J on one node:
//
//   - Demand: D_r = Σ_{j∈J} d_j[r].
//   - Capacity: every resource has capacity 1.0 except the core pipelines,
//     which gain throughput from SMT when two layers are active: C_cpu =
//     SMTBoost (default 1.25, the commonly measured hyper-threading yield).
//   - Contention wastage: overloading a resource does not just divide it, it
//     destroys some of it (cache thrash, DRAM row-buffer interference, NIC
//     congestion). Effective capacity shrinks as
//     C_eff = C / (1 + γ_r · max(0, D_r − C)), with per-resource γ.
//   - Per-job rate: a job is slowed through the resources it actually uses.
//     For each resource, ratio_r = min(1, C_eff/D_r) and the job-specific
//     factor is 1 − d_j[r]·(1 − ratio_r); the job's progress rate is the
//     minimum factor across resources (bottleneck semantics), floored at
//     MinRate.
//
// A job alone on its node progresses at rate 1 by construction, which is the
// normalization the rest of the system builds on: requested and actual
// runtimes are dedicated-node runtimes, and sharing stretches them by the
// inverse progress rate.
//
// The shape this produces matches the paper's narrative: complementary pairs
// (compute-bound with bandwidth-bound) retain high rates for both jobs so a
// shared node outperforms two half-idle ones, while same-bottleneck pairs
// gain little or even lose throughput — which is why pairing-aware placement
// (not sharing alone) is what delivers the efficiency win.
package interference

import (
	"fmt"
	"math"

	"repro/internal/app"
)

// Params are the calibration constants of the co-run model.
type Params struct {
	// SMTBoost is the core-pipeline capacity with two active hardware
	// threads per core relative to one. 1.25 reflects the ~20–30%
	// hyper-threading throughput yield measured across HPC codes.
	SMTBoost float64
	// Wastage holds γ_r: how destructively resource r degrades when
	// oversubscribed. Cache overload (thrash) is most destructive; extra
	// CPU pressure is almost benign.
	Wastage [app.NumResources]float64
	// MinRate floors a job's progress rate so pathological overload cannot
	// stall a job forever.
	MinRate float64
}

// DefaultParams returns the calibration used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		SMTBoost: 1.25,
		Wastage: [app.NumResources]float64{
			app.CPU:     0.40,
			app.MemBW:   0.30,
			app.Cache:   0.80,
			app.Network: 0.20,
		},
		MinRate: 0.05,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.SMTBoost < 1 {
		return fmt.Errorf("interference: SMTBoost %g < 1", p.SMTBoost)
	}
	for r, g := range p.Wastage {
		if g < 0 || math.IsNaN(g) {
			return fmt.Errorf("interference: wastage γ[%s] = %g", app.Resource(r), g)
		}
	}
	if p.MinRate <= 0 || p.MinRate > 1 {
		return fmt.Errorf("interference: MinRate %g outside (0,1]", p.MinRate)
	}
	return nil
}

// Model evaluates co-run progress rates under fixed parameters, optionally
// overridden by empirical pair measurements (see SetMeasured).
type Model struct {
	p        Params
	measured map[pairKey][2]float64
}

// New returns a model. It panics on invalid parameters (they are program
// constants, not user input).
func New(p Params) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{p: p}
}

// Default returns a model with DefaultParams.
func Default() *Model { return New(DefaultParams()) }

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// NodeRates returns the progress rate of each co-located job, aligned with
// loads. Each load is one job's stress vector (the job occupies one
// hardware-thread layer of the node). len(loads) == 0 returns nil; a single
// load always rates 1.
func (m *Model) NodeRates(loads []app.StressVector) []float64 {
	if len(loads) == 0 {
		return nil
	}
	rates := make([]float64, len(loads))
	if len(loads) == 1 {
		rates[0] = 1
		return rates
	}

	// Aggregate demand per resource.
	var demand [app.NumResources]float64
	for _, d := range loads {
		for r := app.Resource(0); r < app.NumResources; r++ {
			demand[r] += d[r]
		}
	}

	// Per-resource throughput ratio under effective capacity.
	var ratio [app.NumResources]float64
	for r := app.Resource(0); r < app.NumResources; r++ {
		capacity := 1.0
		if r == app.CPU {
			capacity = m.p.SMTBoost
		}
		eff := capacity
		if over := demand[r] - capacity; over > 0 {
			eff = capacity / (1 + m.p.Wastage[r]*over)
		}
		if demand[r] <= eff {
			ratio[r] = 1
		} else {
			ratio[r] = eff / demand[r]
		}
	}

	for i, d := range loads {
		rate := 1.0
		for r := app.Resource(0); r < app.NumResources; r++ {
			factor := 1 - d[r]*(1-ratio[r])
			if factor < rate {
				rate = factor
			}
		}
		if rate < m.p.MinRate {
			rate = m.p.MinRate
		}
		rates[i] = rate
	}
	return rates
}

// PairRates returns the progress rates of two co-located jobs.
func (m *Model) PairRates(a, b app.StressVector) (float64, float64) {
	r := m.NodeRates([]app.StressVector{a, b})
	return r[0], r[1]
}

// Throughput returns the aggregate progress rate of a co-location set — the
// node's "useful work per second" in dedicated-node-job equivalents. A value
// above 1 means sharing beats running the jobs back to back on the node.
func (m *Model) Throughput(loads []app.StressVector) float64 {
	total := 0.0
	for _, r := range m.NodeRates(loads) {
		total += r
	}
	return total
}

// PairGain returns Throughput(a, b) − 1: the useful-work surplus of one
// shared node over one dedicated node. Positive values mean co-locating the
// pair does more work per node-second than standard allocation; negative
// values mean the pair interferes badly enough that sharing loses.
func (m *Model) PairGain(a, b app.StressVector) float64 {
	return m.Throughput([]app.StressVector{a, b}) - 1
}

// CoRunMatrix returns rates[i][j] = progress rate of app i when co-located
// with app j on one node (i == j models two instances of the same app).
// This regenerates the paper's pairwise characterization table (T2).
func (m *Model) CoRunMatrix(models []app.Model) [][]float64 {
	n := len(models)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			ri, _ := m.PairRates(models[i].Stress, models[j].Stress)
			out[i][j] = ri
		}
	}
	return out
}
