// Command slurm-ha demonstrates the high-availability controller pair end to
// end, in one process: a journaled primary replicating to a warm standby
// through deterministic chaos proxies, a client storm of tokened submits,
// a network partition that isolates the primary mid-soak, and the
// assertions that make HA worth having —
//
//  1. the standby promotes itself within one lease,
//  2. every acknowledged submit is present exactly once after failover,
//  3. the deposed primary is fenced (rejects mutations), and
//  4. on healing, the deposed node rejoins as a standby and resyncs.
//
// Exits non-zero if any invariant is violated. Flags tune the storm size,
// seed, and lease.
//
//	go run ./cmd/slurm-ha -seed 7 -clients 8 -submits 6
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/slurm"
)

func main() {
	seed := flag.Uint64("seed", 1, "chaos and retry-jitter RNG seed")
	clients := flag.Int("clients", 8, "concurrent submitting clients")
	submits := flag.Int("submits", 6, "submits per client")
	lease := flag.Duration("lease", 500*time.Millisecond, "HA failover lease")
	flag.Parse()
	if err := run(*seed, *clients, *submits, *lease); err != nil {
		fmt.Fprintln(os.Stderr, "slurm-ha: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("slurm-ha: PASS")
}

func run(seed uint64, clients, submits int, lease time.Duration) error {
	cfg := slurm.DefaultConfig()

	dirA, err := os.MkdirTemp("", "slurm-ha-a-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "slurm-ha-b-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirB)

	ctlA, err := slurm.OpenJournaled(cfg, dirA, 64)
	if err != nil {
		return err
	}
	defer ctlA.Close()
	ctlB, err := slurm.OpenJournaled(cfg, dirB, 64)
	if err != nil {
		return err
	}
	defer ctlB.Close()

	srvA := slurm.NewServer(ctlA)
	addrA, err := srvA.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srvA.Close()
	srvB := slurm.NewServer(ctlB)
	addrB, err := srvB.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srvB.Close()

	// Every path touching node A runs through a chaos proxy, so one
	// Partition call network-isolates the primary exactly: clients→A,
	// A→B replication, and B→A replication (the post-promotion direction).
	pCli, err := chaos.Listen(addrA, chaos.Config{Seed: seed, Name: "cli",
		DelayProb: 0.05, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond})
	if err != nil {
		return err
	}
	defer pCli.Close()
	pAB, err := chaos.Listen(addrB, chaos.Config{Seed: seed, Name: "ab"})
	if err != nil {
		return err
	}
	defer pAB.Close()
	pBA, err := chaos.Listen(addrA, chaos.Config{Seed: seed, Name: "ba"})
	if err != nil {
		return err
	}
	defer pBA.Close()

	if err := ctlA.StartHA(slurm.HAOptions{Peer: pAB.Addr(), Lease: lease}); err != nil {
		return err
	}
	if err := ctlB.StartHA(slurm.HAOptions{Standby: true, Peer: pBA.Addr(), Lease: lease}); err != nil {
		return err
	}
	fmt.Printf("slurm-ha: primary %s replicating to standby %s (lease %s)\n", addrA, addrB, lease)

	res, err := slurm.RunFailoverSoak(slurm.FailoverSoakConfig{
		Addrs:            pCli.Addr() + "," + addrB,
		Clients:          clients,
		SubmitsPerClient: submits,
		Seed:             seed,
		Timeout:          300 * time.Millisecond,
		DisruptAt:        clients * submits / 4,
		Disrupt: func() {
			fmt.Println("slurm-ha: partitioning the primary mid-soak")
			pCli.Partition()
			pAB.Partition()
			pBA.Partition()
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("slurm-ha: storm done: %d acked, %d failures, %d retries, %s\n",
		len(res.Acked), res.Failures, res.Retries, res.Elapsed)
	for _, e := range res.Errors {
		fmt.Println("slurm-ha:   error:", e)
	}

	// 1. The standby must have promoted within about one lease; the storm's
	// failover-riding retries usually force this before the storm even ends.
	if err := waitRole(addrB, slurm.RolePrimary, 10*lease); err != nil {
		return fmt.Errorf("standby never promoted: %w", err)
	}
	fmt.Println("slurm-ha: standby promoted to primary")

	// 2. Zero lost acknowledged submits on the new primary, exactly once.
	if err := slurm.AuditExactlyOnce(addrB, seed, res.Acked); err != nil {
		return err
	}
	fmt.Printf("slurm-ha: all %d acknowledged submits present exactly once\n", len(res.Acked))

	// 3. The deposed primary must be fenced: still reachable (dial its real
	// address, not the partitioned proxy) but refusing mutations.
	fenced, err := slurm.Dial(addrA)
	if err != nil {
		return err
	}
	if _, err := fenced.SubmitToken("fenced-probe", "minife", 1, 1800, 900, "fenced-probe"); err == nil {
		fenced.Close()
		return fmt.Errorf("deposed primary accepted a mutation while partitioned (split brain)")
	}
	fenced.Close()
	fmt.Println("slurm-ha: deposed primary is fenced")

	// 4. Heal the partition: the deposed node must observe the higher
	// epoch, demote itself, and resync from the new primary's log.
	pCli.Heal()
	pAB.Heal()
	pBA.Heal()
	if err := waitRole(addrA, slurm.RoleStandby, 10*lease); err != nil {
		return fmt.Errorf("deposed primary never rejoined as standby: %w", err)
	}
	if err := waitCaughtUp(addrA, addrB, 10*lease); err != nil {
		return err
	}
	fmt.Println("slurm-ha: deposed primary rejoined as standby and resynced")
	return nil
}

// waitRole polls a node's health until it reports the wanted HA role.
func waitRole(addr, role string, timeout time.Duration) error {
	cl, err := slurm.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		_, got, _, err := cl.HealthInfo()
		if err == nil && got == role {
			return nil
		}
		if err == nil {
			last = got
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("still %q after %s", last, timeout)
}

// waitCaughtUp polls until the follower's job list matches the primary's.
func waitCaughtUp(follower, primary string, timeout time.Duration) error {
	clF, err := slurm.Dial(follower)
	if err != nil {
		return err
	}
	defer clF.Close()
	clP, err := slurm.Dial(primary)
	if err != nil {
		return err
	}
	defer clP.Close()
	deadline := time.Now().Add(timeout)
	var nf, np int
	for time.Now().Before(deadline) {
		_, nf, err = clF.QueuePage(true, 1, 0)
		if err == nil {
			_, np, err = clP.QueuePage(true, 1, 0)
		}
		if err == nil && nf == np && np > 0 {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("follower never caught up: %d jobs vs primary's %d after %s", nf, np, timeout)
}
