// Command exprun regenerates the evaluation's tables and figures.
//
// Usage:
//
//	exprun -list                 # show the experiment registry
//	exprun                       # run every experiment
//	exprun F1 F2 T3              # run selected experiments
//	exprun -csv -out results F1  # also write results/F1.csv
//	exprun -seeds 5 -jobs 500    # heavier averaging
//	exprun -workers 4            # fan experiments across 4 cores
//
// Experiments fan out across -workers goroutines (default: all cores); each
// experiment is an isolated simulation pipeline, and tables are printed in
// registry order regardless of completion order, so the output is identical
// for any worker count.
//
// Experiment IDs, workloads, and paper-anchored expectations are indexed in
// DESIGN.md §4; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/parallel"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "also write CSV files (requires -out)")
	out := flag.String("out", "", "directory for CSV output")
	seeds := flag.Int("seeds", 3, "number of workload seeds to average over")
	nodes := flag.Int("nodes", 32, "machine size in nodes")
	jobs := flag.Int("jobs", 300, "jobs per run")
	scale := flag.Float64("scale", 0.05, "application runtime scale (1 = full-length runs)")
	mttr := flag.Float64("fault-mttr", 900, "F12: per-node mean time to repair in seconds")
	shape := flag.Float64("fault-shape", 1, "F12: Weibull shape of time-to-failure (1 = exponential)")
	crashProb := flag.Float64("fault-crashprob", 0.02, "F12: per-attempt job crash probability")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = all cores)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-3s %-22s %s\n        expectation: %s\n", e.ID, e.Name, e.Title, e.Paper)
		}
		return
	}
	if *seeds < 1 {
		fatal(fmt.Errorf("-seeds must be ≥ 1, got %d", *seeds))
	}
	if *csv && *out == "" {
		fatal(fmt.Errorf("-csv requires -out"))
	}

	opts := exp.Options{
		Nodes:          *nodes,
		Jobs:           *jobs,
		RuntimeScale:   *scale,
		FaultMTTR:      *mttr,
		FaultShape:     *shape,
		FaultCrashProb: *crashProb,
	}
	for s := 0; s < *seeds; s++ {
		opts.Seeds = append(opts.Seeds, uint64(42+s))
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	if err := run(ids, opts, *workers, *out, os.Stdout); err != nil {
		fatal(err)
	}
}

// rendered is one experiment's output, produced in a worker and emitted in
// registry order.
type rendered struct {
	id    string
	table []byte
	csv   []byte
}

// run executes the selected experiments across workers goroutines and
// writes their tables to out in the order requested. When csvDir is
// non-empty, each experiment's CSV is also written to csvDir/<ID>.csv.
func run(ids []string, opts exp.Options, workers int, csvDir string, out io.Writer) error {
	// Resolve IDs up front so an unknown experiment fails before any run.
	exps := make([]exp.Experiment, len(ids))
	for i, id := range ids {
		e, err := exp.ByID(id)
		if err != nil {
			return err
		}
		exps[i] = e
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	return parallel.RunOrdered(len(exps), workers, func(i int) (rendered, error) {
		e := exps[i]
		tbl, err := e.Run(opts)
		if err != nil {
			return rendered{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			return rendered{}, err
		}
		buf.WriteByte('\n')
		r := rendered{id: e.ID, table: buf.Bytes()}
		if csvDir != "" {
			var cbuf bytes.Buffer
			if err := tbl.RenderCSV(&cbuf); err != nil {
				return rendered{}, err
			}
			r.csv = cbuf.Bytes()
		}
		return r, nil
	}, func(i int, r rendered) error {
		if _, err := out.Write(r.table); err != nil {
			return err
		}
		if csvDir != "" {
			if err := os.WriteFile(filepath.Join(csvDir, r.id+".csv"), r.csv, 0o644); err != nil {
				return err
			}
		}
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exprun:", err)
	os.Exit(1)
}
