// Command exprun regenerates the evaluation's tables and figures.
//
// Usage:
//
//	exprun -list                 # show the experiment registry
//	exprun                       # run every experiment
//	exprun F1 F2 T3              # run selected experiments
//	exprun -csv -out results F1  # also write results/F1.csv
//	exprun -seeds 5 -jobs 500    # heavier averaging
//
// Experiment IDs, workloads, and paper-anchored expectations are indexed in
// DESIGN.md §4; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "also write CSV files (requires -out)")
	out := flag.String("out", "", "directory for CSV output")
	seeds := flag.Int("seeds", 3, "number of workload seeds to average over")
	nodes := flag.Int("nodes", 32, "machine size in nodes")
	jobs := flag.Int("jobs", 300, "jobs per run")
	scale := flag.Float64("scale", 0.05, "application runtime scale (1 = full-length runs)")
	mttr := flag.Float64("fault-mttr", 900, "F12: per-node mean time to repair in seconds")
	shape := flag.Float64("fault-shape", 1, "F12: Weibull shape of time-to-failure (1 = exponential)")
	crashProb := flag.Float64("fault-crashprob", 0.02, "F12: per-attempt job crash probability")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-3s %-22s %s\n        expectation: %s\n", e.ID, e.Name, e.Title, e.Paper)
		}
		return
	}

	opts := exp.Options{
		Nodes:          *nodes,
		Jobs:           *jobs,
		RuntimeScale:   *scale,
		FaultMTTR:      *mttr,
		FaultShape:     *shape,
		FaultCrashProb: *crashProb,
	}
	for s := 0; s < *seeds; s++ {
		opts.Seeds = append(opts.Seeds, uint64(42+s))
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		e, err := exp.ByID(id)
		if err != nil {
			fatal(err)
		}
		tbl, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *csv {
			if *out == "" {
				fatal(fmt.Errorf("-csv requires -out"))
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*out, id+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := tbl.RenderCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exprun:", err)
	os.Exit(1)
}
