package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// testOpts shrinks the experiments so the full test grid runs in about a
// second while still driving every policy through the scheduler.
func testOpts() exp.Options {
	return exp.Options{Seeds: []uint64{42, 43}, Nodes: 32, Jobs: 80, RuntimeScale: 0.02}
}

func runToBytes(t *testing.T, ids []string, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(ids, testOpts(), workers, "", &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDifferentialWorkers: the rendered tables must be byte-identical for
// any worker count — experiments are pure and are emitted in registry
// order, never completion order.
func TestDifferentialWorkers(t *testing.T) {
	ids := []string{"F1", "F2", "T3"}
	sequential := runToBytes(t, ids, 1)
	for _, workers := range []int{2, 8} {
		if par := runToBytes(t, ids, workers); !bytes.Equal(sequential, par) {
			t.Fatalf("workers=%d output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, sequential, workers, par)
		}
	}
}

// TestGoldenTables pins exprun's rendered output for a fixed seed. The
// golden file was generated before the scheduler's free-capacity index
// landed; a diff here means scheduler decisions changed, not just speed.
func TestGoldenTables(t *testing.T) {
	got := runToBytes(t, []string{"F1", "T3"}, 4)
	golden := filepath.Join("testdata", "exprun_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exprun output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"F1", "ZZ"}, testOpts(), 1, "", &buf); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("output written despite unknown ID:\n%s", buf.Bytes())
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"T1"}, testOpts(), 2, dir, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty T1.csv")
	}
}
