// Command wlgen generates synthetic Trinity-style workloads and writes them
// in Standard Workload Format (SWF), for consumption by nodeshare-sim or any
// other SWF-aware tool.
//
// Usage:
//
//	wlgen -jobs 500 -mix trinity -load 1.2 -seed 42 > workload.swf
//	wlgen -arrival batch -jobs 200 -o batch.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/swf"
	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 300, "number of jobs")
	mixName := flag.String("mix", "trinity", "application mix: trinity|cpubound|membound|comm")
	arrival := flag.String("arrival", "poisson", "arrival process: batch|poisson|dailycycle")
	load := flag.Float64("load", 1.0, "offered load for open arrivals")
	nodes := flag.Int("nodes", 32, "target machine size (node-count cap and load calibration)")
	scale := flag.Float64("scale", 1.0, "runtime scale (0.05 shrinks hours to minutes)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	analyze := flag.String("analyze", "", "print statistics for an existing SWF trace and exit")
	flag.Parse()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := swf.Parse(f)
		if err != nil {
			fatal(err)
		}
		if err := swf.Analyze(tr).Render().Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	var arr workload.Arrival
	switch *arrival {
	case "batch":
		arr = workload.Batch
	case "poisson":
		arr = workload.Poisson
	case "dailycycle":
		arr = workload.DailyCycle
	default:
		fatal(fmt.Errorf("unknown arrival %q", *arrival))
	}

	machine := cluster.Trinity(*nodes)
	spec := workload.Spec{
		Mix: mix, Jobs: *jobs, Arrival: arr, Load: *load,
		Cluster: machine, RuntimeScale: *scale, Seed: *seed,
	}
	if arr == workload.Batch {
		spec.Load = 0
	}
	generated, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	trace := swf.FromJobs(generated, machine)
	trace.Header.Comments = append(trace.Header.Comments,
		fmt.Sprintf("Mix: %s, Arrival: %s, Load: %g, Seed: %d", mix.Name, arr, *load, *seed))
	if err := swf.Write(w, trace); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlgen:", err)
	os.Exit(1)
}
