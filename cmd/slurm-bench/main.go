// Command slurm-bench measures the controller's tail latency under open-loop
// load: deterministic Poisson arrivals (seeded, reproducible) at a fixed
// offered rate that does not slow down when the server does, so the reported
// percentiles are honest under overload. The verb mix spans all three
// priority classes — queries, submits, and a control trickle — and the run
// publishes per-class p50/p95/p99/p999, submits/sec goodput, and the
// server's own shed/brownout/deadline counters as JSON.
//
// By default it boots an in-process server with shedding and the brownout
// ladder enabled, drives it past capacity, and writes BENCH_serve.json:
//
//	slurm-bench -rate 2000 -duration 5s -out BENCH_serve.json
//
// Add network chaos between the harness and the server with -chaos (a
// deterministic fault proxy: seeded delays and connection drops):
//
//	slurm-bench -rate 2000 -chaos -chaos-delay-prob 0.05
//
// Or point it at an external controller with -addr (chaos still applies,
// proxying to it):
//
//	slurm-bench -addr 127.0.0.1:6818 -rate 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/slurm"
)

func main() {
	var (
		addr     = flag.String("addr", "", "existing controller to load (default: boot an in-process server)")
		conf     = flag.String("conf", "", "slurm.conf for the in-process server (default: built-in serve-shaped limits)")
		rate     = flag.Float64("rate", 1000, "offered load, arrivals per second (open loop)")
		duration = flag.Duration("duration", 3*time.Second, "how long to generate arrivals")
		conns    = flag.Int("conns", 16, "client connection pool size (bounds concurrency)")
		seed     = flag.Uint64("seed", 42, "root seed for arrivals, verb mix, and chaos")
		deadline = flag.Duration("deadline", 250*time.Millisecond, "per-request deadline budget (0 = none)")
		hedge    = flag.Duration("hedge", 0, "hedge delay for read verbs (0 = no hedging)")
		useChaos = flag.Bool("chaos", false, "interpose the deterministic network-fault proxy")
		dropProb = flag.Float64("chaos-drop-prob", 0.002, "per-chunk connection-drop probability (with -chaos)")
		delayPr  = flag.Float64("chaos-delay-prob", 0.05, "per-chunk delay probability (with -chaos)")
		delayMax = flag.Duration("chaos-delay-max", 20*time.Millisecond, "max injected delay (with -chaos)")
		out      = flag.String("out", "", "write the JSON result to this file (default stdout only)")
	)
	flag.Parse()

	if err := run(*addr, *conf, *rate, *duration, *conns, *seed, *deadline, *hedge,
		*useChaos, *dropProb, *delayPr, *delayMax, *out); err != nil {
		fmt.Fprintln(os.Stderr, "slurm-bench:", err)
		os.Exit(1)
	}
}

func run(addr, conf string, rate float64, duration time.Duration, conns int, seed uint64,
	deadline, hedge time.Duration, useChaos bool, dropProb, delayPr float64,
	delayMax time.Duration, out string) error {
	if addr == "" {
		cfg := slurm.DefaultConfig()
		if conf != "" {
			f, err := os.Open(conf)
			if err != nil {
				return err
			}
			parsed, err := slurm.ParseConfig(f)
			f.Close()
			if err != nil {
				return err
			}
			cfg = parsed
		}
		if cfg.Overload.ShedTarget == 0 {
			// Serve-shaped defaults: finite capacity plus the adaptive
			// shedder and brownout ladder, so an overdriven run shows the
			// graceful-degradation machinery rather than a blind BUSY wall.
			cfg.Overload = slurm.OverloadConfig{
				MaxConns:     256,
				MaxInflight:  32,
				RetryAfter:   5 * time.Millisecond,
				HistoryLimit: 1024,
				ShedTarget:   20 * time.Millisecond,
				ShedWindow:   50 * time.Millisecond,
				BrownoutStep: 250 * time.Millisecond,
			}
		}
		ctl, err := slurm.NewController(cfg)
		if err != nil {
			return err
		}
		srv := slurm.NewServer(ctl)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Shutdown(5 * time.Second)
		fmt.Fprintf(os.Stderr, "slurm-bench: in-process server on %s (inflight %d, shed target %s)\n",
			bound, cfg.Overload.MaxInflight, cfg.Overload.ShedTarget)
		addr = bound
	}

	if useChaos {
		px, err := chaos.Listen(addr, chaos.Config{
			Seed: seed, Name: "bench",
			Drop:      dropProb,
			DelayProb: delayPr,
			DelayMin:  time.Millisecond,
			DelayMax:  delayMax,
		})
		if err != nil {
			return err
		}
		defer px.Close()
		fmt.Fprintf(os.Stderr, "slurm-bench: chaos proxy %s -> %s (drop %.3f, delay %.2f up to %s)\n",
			px.Addr(), addr, dropProb, delayPr, delayMax)
		addr = px.Addr()
		defer func() {
			st := px.Stats()
			fmt.Fprintf(os.Stderr, "slurm-bench: chaos injected %d drops, %d delays\n", st.Drops, st.Delays)
		}()
	}

	res, err := slurm.RunBench(slurm.BenchConfig{
		Addr:           addr,
		Seed:           seed,
		Duration:       duration,
		Rate:           rate,
		Conns:          conns,
		DeadlineBudget: deadline,
		HedgeDelay:     hedge,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, res)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out != "" {
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "slurm-bench: wrote %s\n", out)
	}
	os.Stdout.Write(blob)
	return nil
}
