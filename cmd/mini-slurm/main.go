// Command mini-slurm is the SLURM-like workload manager front end: a
// controller daemon plus sbatch/squeue/sinfo/scancel-style subcommands that
// talk to it over TCP. Time inside the controller is simulated; the
// `advance` and `drain` subcommands move it.
//
// Usage:
//
//	mini-slurm serve -conf slurm.conf -addr 127.0.0.1:6818 -state /var/spool/mini-slurm &
//	mini-slurm sbatch -addr 127.0.0.1:6818 -app minife -nodes 4 -time 7200
//	mini-slurm squeue -addr 127.0.0.1:6818
//	mini-slurm sinfo  -addr 127.0.0.1:6818
//	mini-slurm advance -addr 127.0.0.1:6818 -seconds 3600
//	mini-slurm scancel -addr 127.0.0.1:6818 -id 3
//	mini-slurm scontrol -addr 127.0.0.1:6818 -down 5        # then -up 5
//	mini-slurm scontrol -addr 127.0.0.1:6818 -requeue 3
//	mini-slurm stats  -addr 127.0.0.1:6818
//	mini-slurm health -addr 127.0.0.1:6818        # ok|degraded|draining|fenced
//
// With -state, every accepted operation is appended to a write-ahead journal
// before it is acknowledged; restarting with the same directory replays the
// journal and resumes from the identical queue, node, and clock state.
// Journal records are CRC32C-checksummed (DESIGN.md §11); `fsck` verifies a
// state directory offline and `-repair` salvages the committed prefix,
// quarantining damaged records to quarantine.jsonl:
//
//	mini-slurm fsck -state /var/spool/mini-slurm
//	mini-slurm fsck -state /var/spool/mini-slurm -repair
//
// High availability: run a pair of daemons, the primary pushing its journal
// to a warm standby (see DESIGN.md §9). Client subcommands accept a
// comma-separated -addr list and fail over to the next endpoint when the
// node they reached cannot serve them:
//
//	mini-slurm serve -state /srv/a -addr :6818 -replica 127.0.0.1:6819 &
//	mini-slurm serve -state /srv/b -addr :6819 -standby-of 127.0.0.1:6818 &
//	mini-slurm sbatch -addr 127.0.0.1:6818,127.0.0.1:6819 -app minife -nodes 4 -time 7200
//	mini-slurm health -addr 127.0.0.1:6819        # ok role=standby epoch=1
//
// Every client subcommand also takes -deadline (a per-request time budget the
// server honors end to end, refusing work it cannot finish in time) and
// -hedge (duplicate a stalled read to the next -addr endpoint after the given
// delay). With serve features configured (DESIGN.md §15), `health` prints the
// brownout rung and shed/deadline counters alongside the liveness verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/des"
	"repro/internal/slurm"
	"repro/internal/vfs"
)

const defaultAddr = "127.0.0.1:6818"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serve(args)
	case "sbatch":
		err = sbatch(args)
	case "squeue":
		err = squeue(args)
	case "sinfo":
		err = sinfo(args)
	case "scancel":
		err = scancel(args)
	case "advance":
		err = advance(args)
	case "drain":
		err = drain(args)
	case "stats":
		err = stats(args)
	case "scontrol":
		err = scontrol(args)
	case "health":
		err = health(args)
	case "fsck":
		err = fsck(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mini-slurm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		`usage: mini-slurm <serve|sbatch|squeue|sinfo|scancel|scontrol|advance|drain|stats|health|fsck> [flags]`)
	os.Exit(2)
}

// health probes the controller's health verb, which bypasses admission
// control — it answers even while the server is shedding load or draining.
// Exits 0 only for "ok", so it slots directly into liveness checks.
func health(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	hr, err := cl.HealthFull()
	if err != nil {
		return err
	}
	if hr.Role != "" {
		fmt.Printf("%s role=%s epoch=%d\n", hr.Health, hr.Role, hr.Epoch)
	} else {
		fmt.Println(hr.Health)
	}
	// A serve-features-on controller attaches its degradation story: the
	// brownout rung and the shed/deadline counters an operator triages with.
	if hr.Serve != nil {
		s := hr.Serve
		fmt.Printf("brownout=%s steps=%d busy=%d shed=%d deadline=%d stale_reads=%d\n",
			s.BrownoutState, s.BrownoutSteps, s.Busy, s.Shed, s.DeadlineExceeded, s.StaleReads)
	}
	if hr.Health != slurm.HealthOK {
		os.Exit(1)
	}
	return nil
}

// fsck verifies a state directory's snapshot+journal pair offline: every
// record's checksum, sequence continuity across both files, and the snapshot
// manifest. Run it against a stopped controller (or a copy of its state
// directory). Exit status: 0 clean, 1 damaged. With -repair, the committed
// prefix is rewritten as a clean v2 pair and every damaged or unreachable
// record is preserved in quarantine.jsonl.
func fsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	state := fs.String("state", "", "state directory to verify (required)")
	repair := fs.Bool("repair", false, "salvage the committed prefix and quarantine damaged records")
	fs.Parse(args)
	if *state == "" {
		return fmt.Errorf("fsck: -state is required")
	}
	report, err := slurm.Fsck(vfs.OS{}, *state)
	if err != nil {
		return err
	}
	fmt.Print(report.Summary())
	if *repair {
		if _, err := slurm.FsckRepair(vfs.OS{}, *state); err != nil {
			return err
		}
		after, err := slurm.Fsck(vfs.OS{}, *state)
		if err != nil {
			return err
		}
		if !after.Clean() {
			return fmt.Errorf("fsck: repair left damage behind")
		}
		fmt.Printf("repaired: %d committed entries salvaged", after.Committed)
		if n := report.Unreachable + len(report.Snapshot.Damage) + len(report.Journal.Damage); n > 0 {
			fmt.Printf(", %d record(s) quarantined to %s", n, filepath.Join(*state, "quarantine.jsonl"))
		}
		fmt.Println()
		return nil
	}
	if !report.Clean() {
		os.Exit(1)
	}
	return nil
}

func scontrol(args []string) error {
	fs := flag.NewFlagSet("scontrol", flag.ExitOnError)
	drainNode := fs.Int("drain", -1, "node ID to drain")
	resumeNode := fs.Int("resume", -1, "node ID to resume")
	downNode := fs.Int("down", -1, "node ID to force down (kills and requeues resident jobs)")
	upNode := fs.Int("up", -1, "node ID to return to service")
	requeueID := fs.Int64("requeue", 0, "job ID to kill and requeue")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	switch {
	case *drainNode >= 0:
		if err := cl.DrainNode(*drainNode); err != nil {
			return err
		}
		fmt.Printf("node %d drained\n", *drainNode)
	case *resumeNode >= 0:
		if err := cl.ResumeNode(*resumeNode); err != nil {
			return err
		}
		fmt.Printf("node %d resumed\n", *resumeNode)
	case *downNode >= 0:
		if err := cl.DownNode(*downNode); err != nil {
			return err
		}
		fmt.Printf("node %d down\n", *downNode)
	case *upNode >= 0:
		if err := cl.UpNode(*upNode); err != nil {
			return err
		}
		fmt.Printf("node %d up\n", *upNode)
	case *requeueID != 0:
		if err := cl.Requeue(*requeueID); err != nil {
			return err
		}
		fmt.Printf("job %d requeued\n", *requeueID)
	default:
		return fmt.Errorf("scontrol: need -drain, -resume, -down, -up <node> or -requeue <job>")
	}
	return nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	conf := fs.String("conf", "", "slurm.conf-style configuration file (default built-in Trinity config)")
	addr := fs.String("addr", defaultAddr, "listen address")
	state := fs.String("state", "", "state directory for the write-ahead journal (enables crash recovery)")
	snapEvery := fs.Int("snapshot-every", 256, "journal appends between snapshot compactions (with -state)")
	replica := fs.String("replica", "", "standby address to replicate the journal to (run as HA primary; overrides ReplicaAddr)")
	standbyOf := fs.String("standby-of", "", "primary address to follow as a warm standby (promotes on lease expiry)")
	lease := fs.Duration("lease", 0, "HA failover lease (default 3s; overrides HALeaseSeconds)")
	fs.Parse(args)

	cfg := slurm.DefaultConfig()
	if *conf != "" {
		f, err := os.Open(*conf)
		if err != nil {
			return err
		}
		parsed, err := slurm.ParseConfig(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg = parsed
	}
	var ctl *slurm.Controller
	var err error
	if *state != "" {
		if err := os.MkdirAll(*state, 0o755); err != nil {
			return err
		}
		ctl, err = slurm.OpenJournaled(cfg, *state, *snapEvery)
	} else {
		ctl, err = slurm.NewController(cfg)
	}
	if err != nil {
		return err
	}
	// Only the flags conflict: a conf ReplicaAddr names the pair's standby,
	// and the standby itself overrides it with -standby-of when both nodes
	// share one config file.
	if *standbyOf != "" && *replica != "" {
		ctl.Close()
		return fmt.Errorf("serve: -standby-of and -replica are mutually exclusive")
	}
	ha := slurm.HAOptions{Lease: cfg.HA.Lease, Heartbeat: cfg.HA.Heartbeat}
	if *lease > 0 {
		ha.Lease = *lease
	}
	switch {
	case *standbyOf != "":
		ha.Standby, ha.Peer = true, *standbyOf
	case *replica != "":
		ha.Peer = *replica
	case cfg.HA.Replica != "":
		ha.Peer = cfg.HA.Replica
	}
	if ha.Peer != "" {
		if err := ctl.StartHA(ha); err != nil {
			ctl.Close()
			return err
		}
	}
	srv := slurm.NewServer(ctl)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("mini-slurm: cluster %q policy %s listening on %s\n",
		cfg.ClusterName, cfg.Policy, bound)
	if *state != "" {
		fmt.Printf("mini-slurm: journaling to %s (clock %s after replay)\n", *state, ctl.Now())
	}
	if ha.Peer != "" {
		role := "primary, replicating to"
		if ha.Standby {
			role = "standby, following"
		}
		fmt.Printf("mini-slurm: HA %s %s\n", role, ha.Peer)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Shutdown(10 * time.Second)
	return ctl.Close()
}

func dial(fs *flag.FlagSet, args []string) (*slurm.Client, *flag.FlagSet, error) {
	addr := fs.String("addr", defaultAddr,
		"controller address, or comma-separated list for an HA pair (first healthy wins)")
	deadline := fs.Duration("deadline", 0,
		"per-request deadline budget; the server refuses work it cannot finish in time (0 = none)")
	hedge := fs.Duration("hedge", 0,
		"hedge read requests to the next endpoint after this long without a reply (0 = off)")
	fs.Parse(args)
	// Retrying client: BUSY responses back off, and with an endpoint list a
	// standby's not-primary rejection rotates to the next endpoint.
	cl, err := slurm.DialRetry(*addr, uint64(time.Now().UnixNano()))
	if err != nil {
		return nil, fs, err
	}
	cl.DeadlineBudget = *deadline
	if *hedge > 0 {
		cl.Hedge = &slurm.HedgePolicy{Delay: *hedge}
	}
	return cl, fs, nil
}

func sbatch(args []string) error {
	fs := flag.NewFlagSet("sbatch", flag.ExitOnError)
	app := fs.String("app", "", "application name (required)")
	nodes := fs.Int("nodes", 1, "node count")
	wall := fs.Float64("time", 3600, "requested walltime in seconds")
	runtime := fs.Float64("runtime", 0, "actual runtime in seconds (default 60% of walltime)")
	name := fs.String("name", "", "job name")
	afterSpec := fs.String("after", "", "comma-separated job IDs this job depends on (afterok)")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	if *app == "" {
		return fmt.Errorf("sbatch: -app is required")
	}
	var after []int64
	if *afterSpec != "" {
		for _, part := range strings.Split(*afterSpec, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("sbatch: bad -after %q: %v", part, err)
			}
			after = append(after, v)
		}
	}
	id, err := cl.Submit(*app, *nodes, des.Duration(*wall), des.Duration(*runtime), *name, after...)
	if err != nil {
		return err
	}
	fmt.Printf("Submitted batch job %d\n", id)
	return nil
}

func squeue(args []string) error {
	fs := flag.NewFlagSet("squeue", flag.ExitOnError)
	history := fs.Bool("history", false, "include finished and cancelled jobs")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	jobs, err := cl.Queue(*history)
	if err != nil {
		return err
	}
	fmt.Print(slurm.Squeue(jobs))
	return nil
}

func sinfo(args []string) error {
	fs := flag.NewFlagSet("sinfo", flag.ExitOnError)
	summary := fs.Bool("summary", false, "one-line aggregate view")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	nodes, err := cl.Nodes()
	if err != nil {
		return err
	}
	if *summary {
		fmt.Println(slurm.SinfoSummary(nodes))
		return nil
	}
	fmt.Print(slurm.Sinfo(nodes))
	return nil
}

func scancel(args []string) error {
	fs := flag.NewFlagSet("scancel", flag.ExitOnError)
	id := fs.Int64("id", 0, "job ID to cancel (required)")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	if *id == 0 {
		return fmt.Errorf("scancel: -id is required")
	}
	if err := cl.Cancel(*id); err != nil {
		return err
	}
	fmt.Printf("Cancelled job %d\n", *id)
	return nil
}

func advance(args []string) error {
	fs := flag.NewFlagSet("advance", flag.ExitOnError)
	seconds := fs.Float64("seconds", 3600, "simulated seconds to advance")
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	now, err := cl.Advance(des.Duration(*seconds))
	if err != nil {
		return err
	}
	fmt.Printf("clock: %s\n", now)
	return nil
}

func drain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	now, err := cl.Drain()
	if err != nil {
		return err
	}
	fmt.Printf("drained at %s\n", now)
	return nil
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	cl, _, err := dial(fs, args)
	if err != nil {
		return err
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Println(st)
	return nil
}
