// Command simd is the sweep fabric's worker daemon: it dials a dispatcher
// (sweep -dispatch), fetches the grid spec at hello, and runs
// lease → execute → complete loops until the campaign is done. It is built
// to be killed: leases it holds are reclaimed by the dispatcher, duplicates
// of its work dedupe first-result-wins, and on restart it simply rejoins.
//
//	simd -dispatch host:7077 -parallel 4 -health :7078
//
// The dispatcher may also die and come back (sweep -dispatch -journal): each
// reconnect's hello adopts the dispatcher's current generation, while a
// lease keeps the generation it was granted under — so a completion or
// heartbeat that crossed a dispatcher restart is fenced as stale and the
// loop re-leases under the new incarnation, with no operator involvement.
//
// Signals follow the mini-slurm convention: the first SIGINT/SIGTERM drains
// (each loop finishes and completes its in-flight cell, says goodbye, and
// exits); a second signal kills immediately (in-flight work is abandoned to
// the dispatcher's reclaim machinery). The -health address answers the
// mini-slurm-style health verb with an ok|draining|fenced status and a
// fabric section (cells done, current lease, each loop's dispatcher
// generation — a mid-campaign bump means the dispatcher restarted).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

func main() {
	dispatch := flag.String("dispatch", "", "dispatcher address (required), e.g. host:7077")
	id := flag.String("id", "", "stable worker identity (default: hostname-pid)")
	parallel := flag.Int("parallel", 0, "concurrent cell loops (0 = all cores)")
	health := flag.String("health", "", "serve the health verb on this address (e.g. :7078)")
	specTimeout := flag.Duration("spec-timeout", time.Minute,
		"how long to retry fetching the spec from the dispatcher")
	flag.Parse()

	if *dispatch == "" {
		fatal(fmt.Errorf("-dispatch is required"))
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "simd"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *parallel <= 0 {
		*parallel = runtime.NumCPU()
	}

	d, err := newDaemon(*dispatch, *id, *parallel, *specTimeout)
	if err != nil {
		fatal(err)
	}

	if *health != "" {
		bound, stop, err := fabric.ServeHealth(*health, d.healthReport)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintln(os.Stderr, "simd: health on", bound)
	}

	// First signal drains, second kills — the shutdown ladder ops expect.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "simd: draining (signal again to kill)")
		d.Drain()
		<-sigs
		fmt.Fprintln(os.Stderr, "simd: killed")
		d.Kill()
	}()

	fmt.Fprintf(os.Stderr, "simd: %s running %d loops against %s (%d cells)\n",
		*id, *parallel, *dispatch, d.cells)
	d.Run(context.Background())
	rep := d.healthReport()
	fmt.Fprintf(os.Stderr, "simd: done, %d cells completed\n", rep.Fabric.CellsDone)
}

// daemon is a fleet of worker loops sharing one identity prefix and one
// fetched spec.
type daemon struct {
	workers []*fabric.Worker
	cells   int
}

// newDaemon fetches and validates the spec, then builds (but does not start)
// the worker loops. A spec the daemon cannot honour — wrong mix name,
// impossible grid — is rejected here, before any lease is taken.
func newDaemon(dispatch, id string, parallel int, specTimeout time.Duration) (*daemon, error) {
	raw, cells, err := fabric.FetchSpec(dispatch, specTimeout)
	if err != nil {
		return nil, fmt.Errorf("fetch spec: %w", err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		return nil, err
	}
	if got := spec.NumCells(); got != cells {
		return nil, fmt.Errorf("spec disagrees with dispatcher: %d cells vs %d advertised", got, cells)
	}

	d := &daemon{cells: cells}
	for i := 0; i < parallel; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   fmt.Sprintf("%s/%d", id, i),
			Addr: dispatch,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			return nil, err
		}
		d.workers = append(d.workers, w)
	}
	return d, nil
}

// Run drives every loop until the campaign is done, the daemon is killed, or
// a drain completes.
func (d *daemon) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range d.workers {
		wg.Add(1)
		go func(w *fabric.Worker) {
			defer wg.Done()
			w.Run(ctx)
		}(w)
	}
	wg.Wait()
}

// Drain lets each loop finish and complete its in-flight cell, then exit.
func (d *daemon) Drain() {
	for _, w := range d.workers {
		w.Drain()
	}
}

// Kill abandons in-flight work immediately; the dispatcher reclaims.
func (d *daemon) Kill() {
	for _, w := range d.workers {
		w.Kill()
	}
}

// healthReport folds every loop's snapshot into the daemon-level health verb
// reply.
func (d *daemon) healthReport() fabric.HealthReport {
	snaps := make([]fabric.WorkerSnapshot, 0, len(d.workers))
	for _, w := range d.workers {
		snaps = append(snaps, w.Snapshot())
	}
	return fabric.AggregateHealth(snaps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}
