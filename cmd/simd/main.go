// Command simd is the sweep fabric's worker daemon: it dials a dispatcher
// (sweep -dispatch), fetches the grid spec at hello, and runs
// lease → execute → complete loops until the campaign is done. It is built
// to be killed: leases it holds are reclaimed by the dispatcher, duplicates
// of its work dedupe first-result-wins, and on restart it simply rejoins.
//
//	simd -dispatch host:7077 -parallel 4 -health :7078
//
// The dispatcher may also die and come back (sweep -dispatch -journal): each
// reconnect's hello adopts the dispatcher's current generation, while a
// lease keeps the generation it was granted under — so a completion or
// heartbeat that crossed a dispatcher restart is fenced as stale and the
// loop re-leases under the new incarnation, with no operator involvement.
//
// Signals follow the mini-slurm convention: the first SIGINT/SIGTERM drains
// (each loop finishes and completes its in-flight cell, says goodbye, and
// exits); a second signal kills immediately (in-flight work is abandoned to
// the dispatcher's reclaim machinery). The -health address answers the
// mini-slurm-style health verb with an ok|draining|fenced|quarantined status
// and a fabric section (cells done, current lease, each loop's dispatcher
// generation — a mid-campaign bump means the dispatcher restarted).
//
// -max-reconnect bounds how many consecutive dead rounds (a full retry
// budget burned without reaching the dispatcher) the daemon tolerates before
// exiting nonzero — so a fleet pointed at a permanently dead dispatcher
// fails cleanly instead of looping forever. 0 (the default) retries forever.
//
// -check-health queries another daemon's -health address and exits by
// status: 0 for ok or draining, 2 if any loop is fenced or quarantined, 1 if
// the daemon is unreachable — so scripts and fleet supervisors can act on a
// misbehaving worker from the exit code alone.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

func main() {
	dispatch := flag.String("dispatch", "", "dispatcher address (required), e.g. host:7077")
	id := flag.String("id", "", "stable worker identity (default: hostname-pid)")
	parallel := flag.Int("parallel", 0, "concurrent cell loops (0 = all cores)")
	health := flag.String("health", "", "serve the health verb on this address (e.g. :7078)")
	specTimeout := flag.Duration("spec-timeout", time.Minute,
		"how long to retry fetching the spec from the dispatcher")
	maxReconnect := flag.Int("max-reconnect", 0,
		"give up after this many consecutive failed reconnect rounds (0 = retry forever)")
	checkHealth := flag.String("check-health", "",
		"query a daemon's -health address and exit by status (0 ok/draining, 2 fenced/quarantined, 1 unreachable)")
	flag.Parse()

	if *checkHealth != "" {
		os.Exit(runCheckHealth(*checkHealth, os.Stdout))
	}
	if *dispatch == "" {
		fatal(fmt.Errorf("-dispatch is required"))
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "simd"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *parallel <= 0 {
		*parallel = runtime.NumCPU()
	}

	d, err := newDaemon(*dispatch, *id, *parallel, *specTimeout, *maxReconnect)
	if err != nil {
		fatal(err)
	}

	if *health != "" {
		bound, stop, err := fabric.ServeHealth(*health, d.healthReport)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintln(os.Stderr, "simd: health on", bound)
	}

	// First signal drains, second kills — the shutdown ladder ops expect.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "simd: draining (signal again to kill)")
		d.Drain()
		<-sigs
		fmt.Fprintln(os.Stderr, "simd: killed")
		d.Kill()
	}()

	fmt.Fprintf(os.Stderr, "simd: %s running %d loops against %s (%d cells)\n",
		*id, *parallel, *dispatch, d.cells)
	runErr := d.Run(context.Background())
	rep := d.healthReport()
	fmt.Fprintf(os.Stderr, "simd: done, %d cells completed\n", rep.Fabric.CellsDone)
	if runErr != nil {
		// Typically ErrDispatcherUnreachable after the -max-reconnect budget:
		// a clean nonzero exit a fleet supervisor can see and act on.
		fatal(runErr)
	}
}

// runCheckHealth is the -check-health query mode: fetch another daemon's
// health verb, print the JSON reply, and translate the status into an exit
// code scripts can branch on.
func runCheckHealth(addr string, out io.Writer) int {
	h, err := fabric.FetchWorkerHealth(addr, 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		return 1
	}
	switch h.Health {
	case fabric.HealthOK, fabric.HealthDraining:
		return 0
	default: // fenced, quarantined, or anything unrecognised: misbehaving
		return 2
	}
}

// daemon is a fleet of worker loops sharing one identity prefix and one
// fetched spec.
type daemon struct {
	workers []*fabric.Worker
	cells   int
}

// newDaemon fetches and validates the spec, then builds (but does not start)
// the worker loops. A spec the daemon cannot honour — wrong mix name,
// impossible grid — is rejected here, before any lease is taken.
func newDaemon(dispatch, id string, parallel int, specTimeout time.Duration, maxReconnect int) (*daemon, error) {
	raw, cells, err := fabric.FetchSpec(dispatch, specTimeout)
	if err != nil {
		return nil, fmt.Errorf("fetch spec: %w", err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		return nil, err
	}
	if got := spec.NumCells(); got != cells {
		return nil, fmt.Errorf("spec disagrees with dispatcher: %d cells vs %d advertised", got, cells)
	}

	d := &daemon{cells: cells}
	for i := 0; i < parallel; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:           fmt.Sprintf("%s/%d", id, i),
			Addr:         dispatch,
			MaxReconnect: maxReconnect,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			return nil, err
		}
		d.workers = append(d.workers, w)
	}
	return d, nil
}

// Run drives every loop until the campaign is done, the daemon is killed, or
// a drain completes. The first loop error (typically the -max-reconnect
// budget exhausted against a dead dispatcher) is returned so main can exit
// nonzero.
func (d *daemon) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, w := range d.workers {
		wg.Add(1)
		go func(w *fabric.Worker) {
			defer wg.Done()
			err := w.Run(ctx)
			if err != nil && !errors.Is(err, context.Canceled) {
				// A cancelled context is the operator's own kill, not a
				// failure worth a nonzero exit.
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// Drain lets each loop finish and complete its in-flight cell, then exit.
func (d *daemon) Drain() {
	for _, w := range d.workers {
		w.Drain()
	}
}

// Kill abandons in-flight work immediately; the dispatcher reclaims.
func (d *daemon) Kill() {
	for _, w := range d.workers {
		w.Kill()
	}
}

// healthReport folds every loop's snapshot into the daemon-level health verb
// reply.
func (d *daemon) healthReport() fabric.HealthReport {
	snaps := make([]fabric.WorkerSnapshot, 0, len(d.workers))
	for _, w := range d.workers {
		snaps = append(snaps, w.Snapshot())
	}
	return fabric.AggregateHealth(snaps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}
