package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

func testSpec() sweepgrid.Spec {
	return sweepgrid.Spec{
		Policies: []string{"easy"},
		Loads:    []float64{0.9, 1.2, 1.5},
		Seeds:    2,
		Nodes:    8,
		Jobs:     30,
		Mix:      "trinity",
		Scale:    0.05,
	}
}

// startDispatcher serves spec on an ephemeral port, collecting flushed rows.
func startDispatcher(t *testing.T, spec sweepgrid.Spec) (*fabric.Dispatcher, string, func() [][]byte) {
	t.Helper()
	raw, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var rows [][]byte
	d, err := fabric.NewDispatcher(fabric.Config{
		Cells: spec.NumCells(),
		Spec:  raw,
		Consume: func(i int, res []byte) error {
			mu.Lock()
			defer mu.Unlock()
			rows = append(rows, append([]byte(nil), res...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, addr, func() [][]byte {
		mu.Lock()
		defer mu.Unlock()
		return append([][]byte(nil), rows...)
	}
}

// queryHealth exercises the daemon's health verb over TCP, as an operator or
// fleet manager would.
func queryHealth(t *testing.T, addr string) fabric.HealthReport {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(`{"op":"health"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no health reply")
	}
	var rep fabric.HealthReport
	if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
		t.Fatalf("bad health reply %q: %v", sc.Bytes(), err)
	}
	return rep
}

// TestDaemonRunsCampaign drives a real (small) sweep grid through the daemon
// and asserts the dispatcher reassembles exactly the rows the spec computes
// locally, while the health verb answers ok.
func TestDaemonRunsCampaign(t *testing.T) {
	spec := testSpec()
	d, addr, rows := startDispatcher(t, spec)

	dm, err := newDaemon(addr, "test-daemon", 2, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	hb, stop, err := fabric.ServeHealth("127.0.0.1:0", dm.healthReport)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	rep := queryHealth(t, hb)
	if !rep.OK || rep.Health != fabric.HealthOK {
		t.Fatalf("pre-run health = %+v, want ok", rep)
	}

	done := make(chan struct{})
	go func() { dm.Run(context.Background()); close(done) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d.Wait(ctx); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon loops did not exit after campaign completion")
	}

	got := rows()
	if len(got) != spec.NumCells() {
		t.Fatalf("got %d rows, want %d", len(got), spec.NumCells())
	}
	for i, row := range got {
		want, err := spec.RunCellBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(row, want) {
			t.Fatalf("row %d:\n got %q\nwant %q", i, row, want)
		}
	}

	rep = queryHealth(t, hb)
	if rep.Fabric.CellsDone != int64(spec.NumCells()) {
		t.Fatalf("health cells_done = %d, want %d", rep.Fabric.CellsDone, spec.NumCells())
	}
	if len(rep.Fabric.Workers) != 2 {
		t.Fatalf("health lists %d workers, want 2", len(rep.Fabric.Workers))
	}
}

// TestDaemonDrain asserts a drained daemon exits before the campaign is done
// and reports draining on the health verb — the graceful half of the signal
// ladder.
func TestDaemonDrain(t *testing.T) {
	spec := testSpec()
	_, addr, _ := startDispatcher(t, spec)

	dm, err := newDaemon(addr, "drain-daemon", 1, 10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	dm.Drain() // drain before any lease: the loop says goodbye and exits

	done := make(chan struct{})
	go func() { dm.Run(context.Background()); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drained daemon did not exit")
	}
	if rep := dm.healthReport(); rep.Health != fabric.HealthDraining {
		t.Fatalf("health after drain = %+v, want draining", rep)
	}
}

// TestDaemonRejectsBadSpec: a dispatcher advertising a cell count that
// disagrees with its own spec must be refused at hello time.
func TestDaemonRejectsBadSpec(t *testing.T) {
	spec := testSpec()
	raw, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d, err := fabric.NewDispatcher(fabric.Config{
		Cells:   spec.NumCells() + 1, // lie about the grid size
		Spec:    raw,
		Consume: func(int, []byte) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := newDaemon(addr, "bad", 1, 5*time.Second, 0); err == nil {
		t.Fatal("daemon accepted a spec disagreeing with the advertised cell count")
	}
}

// TestRunCheckHealth maps the -check-health query mode's exit codes: 0 for a
// healthy or draining daemon, 2 for a fenced or quarantined one, 1 when the
// daemon is unreachable — so supervisors can branch on the code alone.
func TestRunCheckHealth(t *testing.T) {
	status := "ok"
	bound, stop, err := fabric.ServeHealth("127.0.0.1:0", func() fabric.HealthReport {
		return fabric.HealthReport{OK: true, Health: status}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		health string
		want   int
	}{
		{fabric.HealthOK, 0},
		{fabric.HealthDraining, 0},
		{fabric.HealthFenced, 2},
		{fabric.HealthQuarantined, 2},
	} {
		status = tc.health
		var buf bytes.Buffer
		if got := runCheckHealth(bound, &buf); got != tc.want {
			t.Fatalf("check-health(%s) = %d, want %d", tc.health, got, tc.want)
		}
		var rep fabric.HealthReport
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil || rep.Health != tc.health {
			t.Fatalf("check-health(%s) printed %q (parse err %v)", tc.health, buf.Bytes(), err)
		}
	}
	stop()
	if got := runCheckHealth(bound, new(bytes.Buffer)); got != 1 {
		t.Fatalf("check-health(unreachable) = %d, want 1", got)
	}
}
