// Command acct-report analyzes a JSON-lines accounting file written by
// nodeshare-sim -acct: per-application aggregates plus overall counts.
//
//	nodeshare-sim -jobs 200 -acct run.acct
//	acct-report run.acct
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acct"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acct-report <file.acct>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	records, err := acct.Read(f)
	if err != nil {
		fatal(err)
	}

	finished, killed, cancelled, shared := 0, 0, 0, 0
	for _, r := range records {
		switch r.State {
		case "FINISHED":
			finished++
		case "KILLED":
			killed++
		case "CANCELLED":
			cancelled++
		}
		if r.Shared {
			shared++
		}
	}
	fmt.Printf("%d records: %d finished, %d killed, %d cancelled; %d ran shared\n\n",
		len(records), finished, killed, cancelled, shared)

	if err := acct.Summary(records).Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acct-report:", err)
	os.Exit(1)
}
