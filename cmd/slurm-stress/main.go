// Command slurm-stress soaks a mini-slurm controller with concurrent
// clients to exercise the overload-protection path: admission control sheds
// requests with BUSY + retry-after, clients retry with jittered backoff and
// idempotent submit tokens, and the run is judged on exactly-once submission
// semantics plus health responsiveness.
//
// By default it boots an in-process server with deliberately undersized
// overload limits so that shedding is guaranteed:
//
//	slurm-stress -clients 64 -submits 8
//
// Point it at an external controller instead with -addr:
//
//	slurm-stress -addr 127.0.0.1:6818 -clients 128
//
// Exit status is 0 only if every soak invariant held (zero duplicate job
// IDs, zero lost submits, every health probe answered).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/slurm"
)

func main() {
	var (
		addr     = flag.String("addr", "", "existing controller to soak (default: boot an in-process server)")
		clients  = flag.Int("clients", 64, "concurrent submitting clients")
		submits  = flag.Int("submits", 8, "distinct jobs per client")
		seed     = flag.Uint64("seed", 42, "root seed for retry-jitter RNG streams")
		conf     = flag.String("conf", "", "slurm.conf for the in-process server (default built-in + tight overload limits)")
		interval = flag.Duration("health-interval", 10*time.Millisecond, "health probe cadence")
		deadline = flag.Duration("health-deadline", time.Second, "per-probe response deadline")
	)
	flag.Parse()

	if err := run(*addr, *conf, *clients, *submits, *seed, *interval, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, "slurm-stress:", err)
		os.Exit(1)
	}
}

func run(addr, conf string, clients, submits int, seed uint64, interval, deadline time.Duration) error {
	if addr == "" {
		cfg := slurm.DefaultConfig()
		if conf != "" {
			f, err := os.Open(conf)
			if err != nil {
				return err
			}
			parsed, err := slurm.ParseConfig(f)
			f.Close()
			if err != nil {
				return err
			}
			cfg = parsed
		}
		if cfg.Overload == (slurm.OverloadConfig{}) {
			// Undersized on purpose: the soak is only meaningful if the
			// server actually sheds.
			cfg.Overload = slurm.OverloadConfig{
				MaxConns:    2 * clients,
				MaxInflight: 2,
				RateLimit:   50,
				RateBurst:   3,
				RetryAfter:  5 * time.Millisecond,
			}
		}
		ctl, err := slurm.NewController(cfg)
		if err != nil {
			return err
		}
		srv := slurm.NewServer(ctl)
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Shutdown(5 * time.Second)
		fmt.Printf("slurm-stress: in-process server on %s (inflight %d, rate %.0f/s)\n",
			bound, cfg.Overload.MaxInflight, cfg.Overload.RateLimit)
		addr = bound
	}

	res, err := slurm.RunSoak(slurm.SoakConfig{
		Addr:             addr,
		Clients:          clients,
		SubmitsPerClient: submits,
		Seed:             seed,
		HealthInterval:   interval,
		HealthDeadline:   deadline,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	// The server's own degradation tally, when serve features are on: how
	// much of the soak it shed by priority vs. volume, and whether the storm
	// pushed it onto the brownout ladder.
	if probe, err := slurm.Dial(addr); err == nil {
		if hr, err := probe.HealthFull(); err == nil && hr.Serve != nil {
			s := hr.Serve
			fmt.Printf("server: busy=%d shed=%d deadline=%d stale_reads=%d brownout=%s (steps %d)\n",
				s.Busy, s.Shed, s.DeadlineExceeded, s.StaleReads, s.BrownoutState, s.BrownoutSteps)
		}
		probe.Close()
	}
	for _, e := range res.Errors {
		fmt.Fprintln(os.Stderr, "slurm-stress: sampled error:", e)
	}
	return res.Ok(clients * submits)
}
