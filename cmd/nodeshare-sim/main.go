// Command nodeshare-sim runs one batch-system simulation and prints its
// metrics: either a synthetic workload (generated in-process) or an SWF
// trace replay.
//
// Usage:
//
//	nodeshare-sim -policy sharebackfill -jobs 300 -load 1.4
//	nodeshare-sim -policy easy -swf workload.swf
//	nodeshare-sim -policy sharefirstfit -trace -jobs 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acct"
	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/report"
	"repro/internal/swf"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	policy := flag.String("policy", "sharebackfill", "scheduling policy (fcfs|firstfit|easy|conservative|sharefirstfit|sharebackfill)")
	nodes := flag.Int("nodes", 32, "machine size in nodes")
	jobsN := flag.Int("jobs", 300, "synthetic workload job count")
	mixName := flag.String("mix", "trinity", "application mix")
	arrival := flag.String("arrival", "poisson", "arrival process: batch|poisson|dailycycle")
	load := flag.Float64("load", 1.4, "offered load for open arrivals")
	scale := flag.Float64("scale", 0.05, "runtime scale")
	seed := flag.Uint64("seed", 42, "workload seed")
	swfPath := flag.String("swf", "", "replay an SWF trace instead of generating a workload")
	trace := flag.Bool("trace", false, "print per-event trace lines")
	gantt := flag.Bool("gantt", false, "print an ASCII node-occupancy timeline after the run")
	acctPath := flag.String("acct", "", "write a JSON-lines accounting file (analyze with acct-report)")
	topoOn := flag.Bool("topo", false, "enable the interconnect model with locality-aware placement")
	corun := flag.String("corun", "", "CSV of measured co-run pairs overriding the analytic model (appA,appB,rateA,rateB)")
	corunExport := flag.Bool("corun-template", false, "print the analytic co-run matrix as a CSV template and exit")
	horizon := flag.Float64("horizon", 0, "stop after this many simulated seconds (0 = run to completion)")
	mtbf := flag.Float64("mtbf", 0, "per-node mean time between failures in seconds (0 = no node failures)")
	mttr := flag.Float64("mttr", 900, "per-node mean time to repair in seconds")
	faultShape := flag.Float64("fault-shape", 1, "Weibull shape of time-to-failure (1 = exponential)")
	crashProb := flag.Float64("crashprob", 0, "per-attempt job crash probability")
	maxRetries := flag.Int("max-retries", 3, "requeue attempts before a job is marked failed (negative = none)")
	backoff := flag.Float64("backoff", 30, "base requeue backoff in seconds, doubling per retry (negative = none)")
	faultSeed := flag.Uint64("fault-seed", 1, "failure-trace RNG seed")
	flag.Parse()

	if *corunExport {
		if err := interference.Default().ExportCoRunCSV(os.Stdout, app.Catalogue()); err != nil {
			fatal(err)
		}
		return
	}

	machine := cluster.Trinity(*nodes)
	cfg := core.Config{Machine: machine, Policy: *policy}
	if *corun != "" {
		f, err := os.Open(*corun)
		if err != nil {
			fatal(err)
		}
		pairs, err := interference.ParseCoRunCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.MeasuredPairs = pairs
	}
	if *topoOn {
		t := topology.Default(*nodes)
		cfg.Topology = &t
		cfg.LocalityAware = true
	}
	if *mtbf < 0 || *crashProb < 0 {
		fatal(fmt.Errorf("-mtbf and -crashprob must be non-negative"))
	}
	faultsOn := *mtbf > 0 || *crashProb > 0
	if faultsOn {
		cfg.Faults = &fault.Config{
			Enabled: true, MTBF: *mtbf, MTTR: *mttr, Shape: *faultShape,
			CrashProb: *crashProb, MaxRetries: *maxRetries,
			Backoff: des.Duration(*backoff), Seed: *faultSeed,
		}
		if err := cfg.Faults.Validate(); err != nil {
			fatal(err)
		}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if *trace {
		sys.Trace(func(line string) { fmt.Println(line) })
	}

	var jobs []*job.Job
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			fatal(err)
		}
		tr, err := swf.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		jobs, err = swf.ToJobs(tr, machine)
		if err != nil {
			fatal(err)
		}
	} else {
		mix, err := workload.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		var arr workload.Arrival
		switch *arrival {
		case "batch":
			arr = workload.Batch
			*load = 0
		case "poisson":
			arr = workload.Poisson
		case "dailycycle":
			arr = workload.DailyCycle
		default:
			fatal(fmt.Errorf("unknown arrival %q", *arrival))
		}
		jobs, err = workload.Generate(workload.Spec{
			Mix: mix, Jobs: *jobsN, Arrival: arr, Load: *load,
			Cluster: machine, RuntimeScale: *scale, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	}

	if err := sys.SubmitJobs(jobs); err != nil {
		fatal(err)
	}
	if *horizon > 0 {
		sys.RunUntil(des.Time(*horizon))
	} else {
		sys.Run()
	}

	if *acctPath != "" {
		var all []*job.Job
		all = append(all, sys.Finished()...)
		all = append(all, sys.Engine().Killed()...)
		all = append(all, sys.Engine().Rejected()...)
		if err := acct.WriteFile(*acctPath, acct.FromJobs(all)); err != nil {
			fatal(err)
		}
	}

	if *gantt {
		var spans []report.Span
		for _, rec := range sys.History() {
			for _, ni := range rec.Nodes {
				spans = append(spans, report.Span{
					Node: ni, Start: float64(rec.Start), End: float64(rec.End),
					Label: int(rec.Job) - 1,
				})
			}
		}
		fmt.Print(report.Gantt(spans, machine.Nodes, 100, 0, 0))
		fmt.Println()
	}

	r := sys.Metrics()
	fmt.Println(r)
	fmt.Printf("  computational efficiency: %.3f\n", r.CompEfficiency)
	fmt.Printf("  scheduling efficiency:    %.3f\n", r.SchedEfficiency)
	fmt.Printf("  utilization:              %.3f\n", r.Utilization)
	fmt.Printf("  shared node-time:         %.1f%%\n", r.SharedFraction*100)
	fmt.Printf("  wait mean / p95:          %.0fs / %.0fs\n", r.Wait.Mean, r.Wait.P95)
	fmt.Printf("  bounded slowdown mean:    %.2f\n", r.Slowdown.Mean)
	fmt.Printf("  stretch mean:             %.3f\n", r.Stretch.Mean)
	fmt.Printf("  scheduler pass mean:      %.1fµs over %d passes\n",
		r.DecisionNanos.Mean/1e3, r.DecisionNanos.N)
	if faultsOn {
		fmt.Printf("  goodput:                  %.3f\n", r.Goodput)
		fmt.Printf("  node failures / repairs:  %d / %d\n", r.NodeFailures, r.NodeRepairs)
		fmt.Printf("  job crashes / requeues:   %d / %d\n", r.JobCrashes, r.Requeues)
		fmt.Printf("  jobs failed permanently:  %d\n", r.FailedJobs)
		fmt.Printf("  lost node-seconds:        %.0f\n", r.LostNodeSeconds)
		fmt.Printf("  down node-seconds:        %.0f\n", r.DownNodeSeconds)
		fmt.Printf("  mean time to reschedule:  %.0fs\n", r.MeanRescheduleSeconds)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nodeshare-sim:", err)
	os.Exit(1)
}
