package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sched"
)

// splitList splits a comma-separated flag value into trimmed entries,
// rejecting empties up front (leading/trailing/duplicate commas or an empty
// value) so a malformed flag fails before any grid cell runs instead of
// fataling mid-grid.
func splitList(flagName, s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-%s %q: empty entry (stray comma?)", flagName, s)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: needs at least one entry", flagName)
	}
	return out, nil
}

// parsePolicies validates the -policies flag: a non-empty comma list of
// registry policy names.
func parsePolicies(s string) ([]string, error) {
	names, err := splitList("policies", s)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if _, err := sched.New(name, sched.ShareConfig{}); err != nil {
			return nil, fmt.Errorf("-policies: %w (known: %s)", err, strings.Join(sched.Names(), ", "))
		}
	}
	return names, nil
}

// parseLoads validates the -loads flag: a non-empty comma list of positive,
// finite offered loads.
func parseLoads(s string) ([]float64, error) {
	entries, err := splitList("loads", s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(entries))
	for _, e := range entries {
		v, err := strconv.ParseFloat(e, 64)
		if err != nil {
			return nil, fmt.Errorf("-loads: bad load %q: %w", e, err)
		}
		// ParseFloat accepts "NaN" and "Inf"; an offered load must be a
		// positive finite arrival-rate multiplier.
		if !(v > 0) || v > 1e9 {
			return nil, fmt.Errorf("-loads: load %q out of range (want 0 < load ≤ 1e9)", e)
		}
		out = append(out, v)
	}
	return out, nil
}
