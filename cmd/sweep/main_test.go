package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// gridConfig is the test grid: small enough to run in well under a second,
// rich enough to exercise every sharing policy and two load regimes.
func gridConfig(t *testing.T, workers int) config {
	t.Helper()
	cfg, err := validate("easy,sharefirstfit,sharebackfill", "0.9,1.4",
		2, 32, 150, "trinity", 0.05, workers)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runToBytes(t *testing.T, cfg config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDifferentialWorkers is the determinism contract of the parallel sweep:
// the same grid must produce byte-identical CSV for every worker count,
// because rows are reassembled in grid order and each cell is a pure
// function of its seed.
func TestDifferentialWorkers(t *testing.T) {
	sequential := runToBytes(t, gridConfig(t, 1))
	for _, workers := range []int{2, 4, 16} {
		par := runToBytes(t, gridConfig(t, workers))
		if !bytes.Equal(sequential, par) {
			t.Fatalf("workers=%d output differs from sequential run:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, sequential, workers, par)
		}
	}
}

// TestGoldenCSV pins the sweep output for a fixed grid. The golden file was
// generated before the scheduler's free-capacity index landed; a diff here
// means scheduler decisions (not just performance) changed.
func TestGoldenCSV(t *testing.T) {
	got := runToBytes(t, gridConfig(t, 4))
	golden := filepath.Join("testdata", "sweep_golden.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestGoldenCSV -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestGridHammerRace floods the worker pool with many small cells; run
// under -race it checks the full CLI path (cells → reassembly → CSV writer)
// for data races.
func TestGridHammerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid; skipped in -short")
	}
	cfg, err := validate("easy,sharefirstfit,sharebackfill", "0.6,1.0,1.4",
		4, 16, 40, "trinity", 0.02, 16)
	if err != nil {
		t.Fatal(err)
	}
	seq := cfg
	seq.workers = 1
	if !bytes.Equal(runToBytes(t, cfg), runToBytes(t, seq)) {
		t.Fatal("hammer grid output differs between 16 workers and sequential")
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name               string
		policies, loads    string
		seeds, nodes, jobs int
		mix                string
		scale              float64
	}{
		{"trailing comma in policies", "easy,", "1.0", 1, 8, 10, "trinity", 0.05},
		{"duplicate comma in policies", "easy,,sharebackfill", "1.0", 1, 8, 10, "trinity", 0.05},
		{"unknown policy", "easy,notapolicy", "1.0", 1, 8, 10, "trinity", 0.05},
		{"trailing comma in loads", "easy", "0.9,1.4,", 1, 8, 10, "trinity", 0.05},
		{"duplicate comma in loads", "easy", "0.9,,1.4", 1, 8, 10, "trinity", 0.05},
		{"empty loads", "easy", "", 1, 8, 10, "trinity", 0.05},
		{"non-numeric load", "easy", "fast", 1, 8, 10, "trinity", 0.05},
		{"negative load", "easy", "-0.5", 1, 8, 10, "trinity", 0.05},
		{"NaN load", "easy", "NaN", 1, 8, 10, "trinity", 0.05},
		{"zero seeds", "easy", "1.0", 0, 8, 10, "trinity", 0.05},
		{"negative seeds", "easy", "1.0", -2, 8, 10, "trinity", 0.05},
		{"zero nodes", "easy", "1.0", 1, 0, 10, "trinity", 0.05},
		{"zero jobs", "easy", "1.0", 1, 8, 0, "trinity", 0.05},
		{"bad mix", "easy", "1.0", 1, 8, 10, "nosuchmix", 0.05},
		{"zero scale", "easy", "1.0", 1, 8, 10, "trinity", 0},
	}
	for _, tc := range cases {
		if _, err := validate(tc.policies, tc.loads, tc.seeds, tc.nodes, tc.jobs,
			tc.mix, tc.scale, 0); err == nil {
			t.Errorf("%s: validate accepted it", tc.name)
		}
	}
}

func TestValidateAcceptsSpaces(t *testing.T) {
	cfg, err := validate(" easy , sharebackfill ", " 0.9 , 1.4 ", 1, 8, 10, "trinity", 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.policies) != 2 || cfg.policies[0] != "easy" || cfg.policies[1] != "sharebackfill" {
		t.Fatalf("policies = %v", cfg.policies)
	}
	if len(cfg.loads) != 2 || cfg.loads[0] != 0.9 || cfg.loads[1] != 1.4 {
		t.Fatalf("loads = %v", cfg.loads)
	}
}

// failAfterWriter errors once it has accepted n bytes, standing in for a
// full disk mid-grid.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

func TestRunReportsWriterError(t *testing.T) {
	cfg, err := validate("easy", "1.0", 1, 8, 20, "trinity", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, &failAfterWriter{n: 10}); err == nil {
		t.Fatal("run succeeded despite a failing writer")
	}
}
