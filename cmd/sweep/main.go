// Command sweep runs a policy × load × seed grid and emits one CSV row per
// run — the bulk data source for plotting beyond the canned experiments.
//
// Cells fan out across -workers goroutines (default: all cores). Each cell
// is a pure function of its seed, and rows are reassembled in grid order —
// never completion order — so the CSV is byte-identical for any worker
// count (cmd/sweep's differential test enforces this).
//
//	sweep -policies easy,sharebackfill -loads 0.6,0.9,1.2,1.5 -seeds 5 > grid.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// config is a fully validated sweep invocation.
type config struct {
	policies []string
	loads    []float64
	seeds    int
	nodes    int
	jobs     int
	mix      workload.Mix
	scale    float64
	workers  int
}

// cell is one grid coordinate; the grid is policy-major, then load, then
// seed, matching the original sequential loop nest.
type cell struct {
	policy string
	load   float64
	seed   uint64
}

func main() {
	policies := flag.String("policies", "easy,sharefirstfit,sharebackfill",
		"comma-separated policy list")
	loads := flag.String("loads", "0.6,0.9,1.2,1.5", "comma-separated offered loads")
	seeds := flag.Int("seeds", 3, "seeds per cell (42, 43, …)")
	nodes := flag.Int("nodes", 32, "machine size")
	jobs := flag.Int("jobs", 300, "jobs per run")
	mixName := flag.String("mix", "trinity", "application mix")
	scale := flag.Float64("scale", 0.05, "runtime scale")
	workers := flag.Int("workers", 0, "parallel grid workers (0 = all cores)")
	flag.Parse()

	cfg, err := validate(*policies, *loads, *seeds, *nodes, *jobs, *mixName, *scale, *workers)
	if err != nil {
		fatal(err)
	}
	if err := run(cfg, os.Stdout); err != nil {
		// Completed rows were already flushed by run; exit non-zero without
		// dropping them.
		fatal(err)
	}
}

// validate checks every flag up front so the grid never starts doomed.
func validate(policies, loads string, seeds, nodes, jobs int, mixName string,
	scale float64, workers int) (config, error) {

	var cfg config
	var err error
	if cfg.policies, err = parsePolicies(policies); err != nil {
		return config{}, err
	}
	if cfg.loads, err = parseLoads(loads); err != nil {
		return config{}, err
	}
	if seeds < 1 {
		return config{}, fmt.Errorf("-seeds must be ≥ 1, got %d", seeds)
	}
	if nodes < 1 {
		return config{}, fmt.Errorf("-nodes must be ≥ 1, got %d", nodes)
	}
	if jobs < 1 {
		return config{}, fmt.Errorf("-jobs must be ≥ 1, got %d", jobs)
	}
	if !(scale > 0) {
		return config{}, fmt.Errorf("-scale must be > 0, got %g", scale)
	}
	if cfg.mix, err = workload.MixByName(mixName); err != nil {
		return config{}, err
	}
	cfg.seeds, cfg.nodes, cfg.jobs, cfg.scale = seeds, nodes, jobs, scale
	cfg.workers = workers
	return cfg, nil
}

// run executes the grid and streams CSV rows to out in grid order. On error
// the completed row prefix is flushed before returning, so a mid-grid
// failure never discards finished work.
func run(cfg config, out io.Writer) error {
	cells := make([]cell, 0, len(cfg.policies)*len(cfg.loads)*cfg.seeds)
	for _, policy := range cfg.policies {
		for _, load := range cfg.loads {
			for s := 0; s < cfg.seeds; s++ {
				cells = append(cells, cell{policy: policy, load: load, seed: uint64(42 + s)})
			}
		}
	}

	w := csv.NewWriter(out)
	if err := w.Write([]string{
		"policy", "load", "seed", "finished", "makespan_s",
		"comp_efficiency", "sched_efficiency", "utilization", "shared_fraction",
		"wait_mean_s", "wait_p95_s", "slowdown_mean", "stretch_mean",
	}); err != nil {
		return err
	}

	machine := cluster.Trinity(cfg.nodes)
	err := parallel.RunOrdered(len(cells), cfg.workers,
		func(i int) ([]string, error) { return runCell(cfg, machine, cells[i]) },
		func(i int, row []string) error { return w.Write(row) })
	// Flush whatever reached the writer — on failure that is every row below
	// the first failing cell — before reporting the error.
	w.Flush()
	if err != nil {
		return err
	}
	return w.Error()
}

// runCell executes one grid cell: an isolated simulation built entirely from
// the cell's coordinates (its own workload, cluster, and engine), safe to
// run concurrently with any other cell.
func runCell(cfg config, machine cluster.Config, c cell) ([]string, error) {
	generated, err := workload.Generate(workload.Spec{
		Mix: cfg.mix, Jobs: cfg.jobs, Arrival: workload.Poisson, Load: c.load,
		Cluster: machine, RuntimeScale: cfg.scale, Seed: c.seed,
	})
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.Config{Machine: machine, Policy: c.policy})
	if err != nil {
		return nil, err
	}
	if err := sys.SubmitJobs(generated); err != nil {
		return nil, err
	}
	sys.Run()
	r := sys.Metrics()
	return []string{
		c.policy,
		fmt.Sprintf("%g", c.load),
		fmt.Sprintf("%d", c.seed),
		fmt.Sprintf("%d", r.Finished),
		fmt.Sprintf("%.1f", float64(r.Makespan)),
		fmt.Sprintf("%.4f", r.CompEfficiency),
		fmt.Sprintf("%.4f", r.SchedEfficiency),
		fmt.Sprintf("%.4f", r.Utilization),
		fmt.Sprintf("%.4f", r.SharedFraction),
		fmt.Sprintf("%.1f", r.Wait.Mean),
		fmt.Sprintf("%.1f", r.Wait.P95),
		fmt.Sprintf("%.3f", r.Slowdown.Mean),
		fmt.Sprintf("%.4f", r.Stretch.Mean),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
