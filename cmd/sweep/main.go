// Command sweep runs a policy × load × seed grid and emits one CSV row per
// run — the bulk data source for plotting beyond the canned experiments.
//
// Cells fan out across -workers goroutines (default: all cores). Each cell
// is a pure function of its seed, and rows are reassembled in grid order —
// never completion order — so the CSV is byte-identical for any worker
// count (cmd/sweep's differential test enforces this).
//
//	sweep -policies easy,sharebackfill -loads 0.6,0.9,1.2,1.5 -seeds 5 > grid.csv
//
// With -dispatch the same grid is served to remote simd daemons instead of
// local goroutines: sweep becomes a fault-tolerant dispatcher (leases,
// requeues, speculation, first-result-wins dedup) and still emits the same
// bytes, reassembled in strict grid order.
//
//	sweep -dispatch :7077 -seeds 5 > grid.csv      # then: simd -dispatch host:7077
//
// Adding -journal makes a dispatched campaign crash-recoverable: accepted
// rows are journaled as they land, and a sweep restarted with the same
// -journal (and the same grid flags) resumes — committed rows are re-emitted
// without recomputation, the rest requeued, and workers still holding leases
// from the crashed incarnation are fenced off them. The first SIGINT drains
// (checkpointing the journal for a later resume); the second kills.
//
//	sweep -dispatch :7077 -journal grid.journal -seeds 5 > grid.csv
//
// -dispatch-health asks a running dispatcher how far the campaign is
// (cells done/leased, generation, connections) and prints the JSON reply.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fabric"
	"repro/internal/parallel"
	"repro/internal/sweepgrid"
)

// config is a fully validated sweep invocation.
type config struct {
	policies []string
	loads    []float64
	seeds    int
	nodes    int
	jobs     int
	mixName  string
	scale    float64
	workers  int
}

// spec renders the config as the shared grid definition both execution
// paths (local goroutines, dispatched daemons) run from.
func (c config) spec() sweepgrid.Spec {
	return sweepgrid.Spec{
		Policies: c.policies,
		Loads:    c.loads,
		Seeds:    c.seeds,
		Nodes:    c.nodes,
		Jobs:     c.jobs,
		Mix:      c.mixName,
		Scale:    c.scale,
	}
}

func main() {
	policies := flag.String("policies", "easy,sharefirstfit,sharebackfill",
		"comma-separated policy list")
	loads := flag.String("loads", "0.6,0.9,1.2,1.5", "comma-separated offered loads")
	seeds := flag.Int("seeds", 3, "seeds per cell (42, 43, …)")
	nodes := flag.Int("nodes", 32, "machine size")
	jobs := flag.Int("jobs", 300, "jobs per run")
	mixName := flag.String("mix", "trinity", "application mix")
	scale := flag.Float64("scale", 0.05, "runtime scale")
	workers := flag.Int("workers", 0, "parallel grid workers (0 = all cores)")
	dispatch := flag.String("dispatch", "",
		"serve the grid to simd daemons on this address (e.g. :7077) instead of running locally")
	journal := flag.String("journal", "",
		"campaign journal path (dispatch mode): makes the campaign crash-recoverable; restart with the same journal to resume")
	dispatchHealth := flag.String("dispatch-health", "",
		"query a running dispatcher's health at this address, print the JSON reply, and exit")
	verbose := flag.Bool("verbose", false, "log every lease decision to stderr (dispatch mode)")
	verifySample := flag.Float64("verify-sample", 0,
		"fraction of cells to re-execute on a second worker and byte-compare (dispatch mode; 0 disables, 1 verifies every cell; needs ≥2 workers)")
	verifySeed := flag.Uint64("verify-seed", 0,
		"seed selecting which cells fall in the verification sample (dispatch mode)")
	poisonAfter := flag.Int("poison-after", 0,
		"retire a cell as POISONED after it fails on this many distinct workers (dispatch mode; 0 = fabric default of 3)")
	poisonedSidecar := flag.String("poisoned-sidecar", "",
		"where to write the poisoned-cell JSON report (dispatch mode; default <journal>.poisoned.json when -journal is set)")
	flag.Parse()

	if *dispatchHealth != "" {
		h, err := fabric.FetchDispatchHealth(*dispatchHealth, 5*time.Second)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(h); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := validate(*policies, *loads, *seeds, *nodes, *jobs, *mixName, *scale, *workers)
	if err != nil {
		fatal(err)
	}
	if *dispatch != "" {
		err = runDispatch(cfg, *dispatch, *journal, os.Stdout, dispatchOpts{
			verbose:         *verbose,
			verifySample:    *verifySample,
			verifySeed:      *verifySeed,
			poisonAfter:     *poisonAfter,
			poisonedSidecar: *poisonedSidecar,
			started: func(addr string) {
				fmt.Fprintln(os.Stderr, "sweep: dispatching grid on", addr)
			},
		})
		if errors.Is(err, fabric.ErrDrained) {
			// A drained campaign is a clean, resumable stop, not a failure.
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return
		}
	} else {
		if *journal != "" {
			fatal(errors.New("-journal requires -dispatch (the local path recomputes cells instead)"))
		}
		err = run(cfg, os.Stdout)
	}
	if err != nil {
		// Completed rows were already flushed; exit non-zero without
		// dropping them.
		fatal(err)
	}
}

// validate checks every flag up front so the grid never starts doomed.
func validate(policies, loads string, seeds, nodes, jobs int, mixName string,
	scale float64, workers int) (config, error) {

	var cfg config
	var err error
	if cfg.policies, err = parsePolicies(policies); err != nil {
		return config{}, err
	}
	if cfg.loads, err = parseLoads(loads); err != nil {
		return config{}, err
	}
	cfg.seeds, cfg.nodes, cfg.jobs, cfg.scale = seeds, nodes, jobs, scale
	cfg.mixName = mixName
	cfg.workers = workers
	if err := cfg.spec().Validate(); err != nil {
		return config{}, err
	}
	if seeds < 1 {
		return config{}, fmt.Errorf("-seeds must be ≥ 1, got %d", seeds)
	}
	return cfg, nil
}

// run executes the grid in-process and streams CSV rows to out in grid
// order. On error the completed row prefix is flushed before returning, so a
// mid-grid failure never discards finished work.
func run(cfg config, out io.Writer) error {
	spec := cfg.spec()
	w := csv.NewWriter(out)
	if err := w.Write(sweepgrid.Header()); err != nil {
		return err
	}
	err := parallel.RunOrdered(spec.NumCells(), cfg.workers,
		func(i int) ([]string, error) { return spec.RunCell(i) },
		func(i int, row []string) error { return w.Write(row) })
	// Flush whatever reached the writer — on failure that is every row below
	// the first failing cell — before reporting the error.
	w.Flush()
	if err != nil {
		return err
	}
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
