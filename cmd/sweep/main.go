// Command sweep runs a policy × load × seed grid and emits one CSV row per
// run — the bulk data source for plotting beyond the canned experiments.
//
//	sweep -policies easy,sharebackfill -loads 0.6,0.9,1.2,1.5 -seeds 5 > grid.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	policies := flag.String("policies", "easy,sharefirstfit,sharebackfill",
		"comma-separated policy list")
	loads := flag.String("loads", "0.6,0.9,1.2,1.5", "comma-separated offered loads")
	seeds := flag.Int("seeds", 3, "seeds per cell (42, 43, …)")
	nodes := flag.Int("nodes", 32, "machine size")
	jobs := flag.Int("jobs", 300, "jobs per run")
	mixName := flag.String("mix", "trinity", "application mix")
	scale := flag.Float64("scale", 0.05, "runtime scale")
	flag.Parse()

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		fatal(err)
	}
	var loadVals []float64
	for _, s := range strings.Split(*loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("bad load %q: %w", s, err))
		}
		loadVals = append(loadVals, v)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{
		"policy", "load", "seed", "finished", "makespan_s",
		"comp_efficiency", "sched_efficiency", "utilization", "shared_fraction",
		"wait_mean_s", "wait_p95_s", "slowdown_mean", "stretch_mean",
	}); err != nil {
		fatal(err)
	}

	machine := cluster.Trinity(*nodes)
	for _, policy := range strings.Split(*policies, ",") {
		policy = strings.TrimSpace(policy)
		for _, load := range loadVals {
			for s := 0; s < *seeds; s++ {
				seed := uint64(42 + s)
				generated, err := workload.Generate(workload.Spec{
					Mix: mix, Jobs: *jobs, Arrival: workload.Poisson, Load: load,
					Cluster: machine, RuntimeScale: *scale, Seed: seed,
				})
				if err != nil {
					fatal(err)
				}
				sys, err := core.NewSystem(core.Config{Machine: machine, Policy: policy})
				if err != nil {
					fatal(err)
				}
				if err := sys.SubmitJobs(generated); err != nil {
					fatal(err)
				}
				sys.Run()
				r := sys.Metrics()
				if err := w.Write([]string{
					policy,
					fmt.Sprintf("%g", load),
					fmt.Sprintf("%d", seed),
					fmt.Sprintf("%d", r.Finished),
					fmt.Sprintf("%.1f", float64(r.Makespan)),
					fmt.Sprintf("%.4f", r.CompEfficiency),
					fmt.Sprintf("%.4f", r.SchedEfficiency),
					fmt.Sprintf("%.4f", r.Utilization),
					fmt.Sprintf("%.4f", r.SharedFraction),
					fmt.Sprintf("%.1f", r.Wait.Mean),
					fmt.Sprintf("%.1f", r.Wait.P95),
					fmt.Sprintf("%.3f", r.Slowdown.Mean),
					fmt.Sprintf("%.4f", r.Stretch.Mean),
				}); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
