package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

// TestDifferentialDispatch is the distributed half of the determinism
// contract: the same grid served through the fabric dispatcher to worker
// daemons must emit CSV byte-identical to the in-process -workers path. Rows
// are computed remotely, complete out of order, and are reassembled in
// strict grid order — the bytes must not care.
func TestDifferentialDispatch(t *testing.T) {
	cfg := gridConfig(t, 2)
	local := runToBytes(t, cfg)

	var remote bytes.Buffer
	started := make(chan string, 1)
	dispatchErr := make(chan error, 1)
	go func() {
		dispatchErr <- runDispatch(cfg, "127.0.0.1:0", &remote, false,
			func(addr string) { started <- addr })
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-dispatchErr:
		t.Fatalf("dispatcher exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher never started listening")
	}

	// Worker daemons, exactly as cmd/simd builds them: fetch the spec at
	// hello, run cells from it.
	raw, cells, err := fabric.FetchSpec(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cells != spec.NumCells() {
		t.Fatalf("dispatcher advertises %d cells, spec has %d", cells, spec.NumCells())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   string(rune('a' + i)),
			Addr: addr,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}

	select {
	case err := <-dispatchErr:
		if err != nil {
			t.Fatalf("dispatch campaign: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("dispatch campaign did not finish")
	}

	if !bytes.Equal(local, remote.Bytes()) {
		t.Fatalf("dispatched output differs from local run:\n--- local ---\n%s\n--- dispatched ---\n%s",
			local, remote.Bytes())
	}
}
