package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

// TestDifferentialDispatch is the distributed half of the determinism
// contract: the same grid served through the fabric dispatcher to worker
// daemons must emit CSV byte-identical to the in-process -workers path. Rows
// are computed remotely, complete out of order, and are reassembled in
// strict grid order — the bytes must not care.
func TestDifferentialDispatch(t *testing.T) {
	cfg := gridConfig(t, 2)
	local := runToBytes(t, cfg)

	var remote bytes.Buffer
	started := make(chan string, 1)
	dispatchErr := make(chan error, 1)
	go func() {
		dispatchErr <- runDispatch(cfg, "127.0.0.1:0", "", &remote,
			dispatchOpts{started: func(addr string) { started <- addr }})
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-dispatchErr:
		t.Fatalf("dispatcher exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher never started listening")
	}

	// Worker daemons, exactly as cmd/simd builds them: fetch the spec at
	// hello, run cells from it.
	raw, cells, err := fabric.FetchSpec(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cells != spec.NumCells() {
		t.Fatalf("dispatcher advertises %d cells, spec has %d", cells, spec.NumCells())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   string(rune('a' + i)),
			Addr: addr,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}

	select {
	case err := <-dispatchErr:
		if err != nil {
			t.Fatalf("dispatch campaign: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("dispatch campaign did not finish")
	}

	if !bytes.Equal(local, remote.Bytes()) {
		t.Fatalf("dispatched output differs from local run:\n--- local ---\n%s\n--- dispatched ---\n%s",
			local, remote.Bytes())
	}
}

// TestDispatchJournalResume is the CLI half of the crash-recovery contract:
// a journaled campaign run to completion, then re-run with the same journal
// and ZERO workers, must re-emit the identical CSV purely from the journal —
// no cell is recomputed, the header lands before the replayed rows, and the
// second run exits as soon as the recovered prefix covers the grid.
func TestDispatchJournalResume(t *testing.T) {
	cfg := gridConfig(t, 2)
	local := runToBytes(t, cfg)
	journal := filepath.Join(t.TempDir(), "grid.journal")

	// First run: a journaled campaign completed by real workers.
	var first bytes.Buffer
	started := make(chan string, 1)
	dispatchErr := make(chan error, 1)
	go func() {
		dispatchErr <- runDispatch(cfg, "127.0.0.1:0", journal, &first,
			dispatchOpts{started: func(addr string) { started <- addr }})
	}()
	var addr string
	select {
	case addr = <-started:
	case err := <-dispatchErr:
		t.Fatalf("dispatcher exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher never started listening")
	}
	raw, _, err := fabric.FetchSpec(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   string(rune('a' + i)),
			Addr: addr,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}
	select {
	case err := <-dispatchErr:
		if err != nil {
			t.Fatalf("journaled campaign: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("journaled campaign did not finish")
	}
	if !bytes.Equal(local, first.Bytes()) {
		t.Fatalf("journaled run differs from local run:\n--- local ---\n%s\n--- journaled ---\n%s",
			local, first.Bytes())
	}

	// Second run: same journal, no workers. Every row must come back from
	// the journal alone, byte-identical.
	var second bytes.Buffer
	if err := runDispatch(cfg, "127.0.0.1:0", journal, &second, dispatchOpts{}); err != nil {
		t.Fatalf("journal replay: %v", err)
	}
	if !bytes.Equal(local, second.Bytes()) {
		t.Fatalf("journal replay differs from local run:\n--- local ---\n%s\n--- replay ---\n%s",
			local, second.Bytes())
	}
}

// TestDispatchJournalRefusesOtherGrid: restarting with the same journal but
// a different grid must refuse rather than mix campaigns.
func TestDispatchJournalRefusesOtherGrid(t *testing.T) {
	cfg := gridConfig(t, 2)
	journal := filepath.Join(t.TempDir(), "grid.journal")
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runDispatch(cfg, "127.0.0.1:0", journal, &out, dispatchOpts{})
	}()
	// The journal header+campaign records are written inside NewDispatcher,
	// before Listen; poll until the file exists, then abandon the campaign.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(journal); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never created")
		}
		time.Sleep(10 * time.Millisecond)
	}

	other, err := validate("easy", "0.9", 1, 32, 150, "trinity", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := runDispatch(other, "127.0.0.1:0", journal, &out2, dispatchOpts{}); !errors.Is(err, fabric.ErrCampaignMismatch) {
		t.Fatalf("dispatch on foreign journal = %v, want ErrCampaignMismatch", err)
	}
}

// TestDispatchPoisonedSidecar is the CLI half of the containment contract: a
// cell that fails on enough distinct workers is poisoned, the campaign
// completes around it, runDispatch returns the fabric's *PoisonedError (so
// sweep exits nonzero), and the machine-readable sidecar lands next to the
// journal naming exactly the missing cell. Every healthy row still matches
// the local run byte-for-byte.
func TestDispatchPoisonedSidecar(t *testing.T) {
	const badCell = 3
	cfg := gridConfig(t, 2)
	local := runToBytes(t, cfg)
	journal := filepath.Join(t.TempDir(), "grid.journal")

	var remote bytes.Buffer
	started := make(chan string, 1)
	dispatchErr := make(chan error, 1)
	go func() {
		dispatchErr <- runDispatch(cfg, "127.0.0.1:0", journal, &remote,
			dispatchOpts{poisonAfter: 2, started: func(addr string) { started <- addr }})
	}()
	var addr string
	select {
	case addr = <-started:
	case err := <-dispatchErr:
		t.Fatalf("dispatcher exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher never started listening")
	}

	raw, _, err := fabric.FetchSpec(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepgrid.DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   string(rune('a' + i)),
			Addr: addr,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				if cell == badCell {
					return nil, errors.New("synthetic: cell is bad on every worker")
				}
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}

	var derr error
	select {
	case derr = <-dispatchErr:
	case <-time.After(120 * time.Second):
		t.Fatal("dispatch campaign did not finish")
	}
	var perr *fabric.PoisonedError
	if !errors.As(derr, &perr) || len(perr.Cells) != 1 || perr.Cells[0].Cell != badCell {
		t.Fatalf("runDispatch = %v, want *PoisonedError naming cell %d", derr, badCell)
	}

	// The CSV is the local golden minus exactly the poisoned cell's row
	// (header is line 0, cell i is line i+1).
	localLines := bytes.Split(local, []byte("\n"))
	want := append([][]byte{}, localLines[:badCell+1]...)
	want = append(want, localLines[badCell+2:]...)
	if got := remote.Bytes(); !bytes.Equal(got, bytes.Join(want, []byte("\n"))) {
		t.Fatalf("dispatched output differs from golden-minus-poisoned:\n--- want ---\n%s\n--- got ---\n%s",
			bytes.Join(want, []byte("\n")), got)
	}

	// The sidecar defaulted to <journal>.poisoned.json and names the cell.
	data, err := os.ReadFile(journal + ".poisoned.json")
	if err != nil {
		t.Fatalf("poisoned sidecar: %v", err)
	}
	var side fabric.PoisonedError
	if err := json.Unmarshal(data, &side); err != nil {
		t.Fatalf("sidecar parse: %v (%s)", err, data)
	}
	if len(side.Cells) != 1 || side.Cells[0].Cell != badCell || side.Cells[0].Err == "" {
		t.Fatalf("sidecar = %+v, want cell %d with its error", side, badCell)
	}
}
