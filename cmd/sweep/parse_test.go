package main

import (
	"math"
	"strings"
	"testing"
)

func TestSplitListRejectsEmptyEntries(t *testing.T) {
	for _, bad := range []string{"", ",", "a,", ",a", "a,,b", " , ", "a, ,b"} {
		if out, err := splitList("x", bad); err == nil {
			t.Errorf("splitList(%q) = %v, want error", bad, out)
		}
	}
}

func TestParsePoliciesKnowsRegistry(t *testing.T) {
	names, err := parsePolicies("fcfs,firstfit,easy,conservative,sharefirstfit,sharebackfill,shareconservative")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 7 {
		t.Fatalf("got %d policies", len(names))
	}
	if _, err := parsePolicies("easy,slurm"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestParseLoadsValues(t *testing.T) {
	loads, err := parseLoads("0.6, 0.9 ,1.2,1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, 0.9, 1.2, 1.5}
	for i, v := range want {
		if loads[i] != v {
			t.Fatalf("loads = %v, want %v", loads, want)
		}
	}
	for _, bad := range []string{"0", "-1", "NaN", "+Inf", "-Inf", "1e300", "0x", "1.0,oops"} {
		if out, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads(%q) = %v, want error", bad, out)
		}
	}
}

// FuzzParseLoads asserts the parser never panics and that every accepted
// load list round-trips to positive finite values with no empty entries.
func FuzzParseLoads(f *testing.F) {
	for _, seed := range []string{"0.6,0.9,1.2,1.5", "1", "", ",", "1,,2", " 2 ", "NaN", "1e9", "-3", "0.5,"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		loads, err := parseLoads(s)
		if err != nil {
			return
		}
		if len(loads) == 0 {
			t.Fatalf("parseLoads(%q) accepted an empty list", s)
		}
		if len(loads) != strings.Count(s, ",")+1 {
			t.Fatalf("parseLoads(%q) = %v: entry count mismatch", s, loads)
		}
		for _, v := range loads {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("parseLoads(%q) accepted non-positive/non-finite %v", s, v)
			}
		}
	})
}

// FuzzParsePolicies asserts the parser never panics and only ever accepts
// trimmed, non-empty registry names.
func FuzzParsePolicies(f *testing.F) {
	for _, seed := range []string{"easy", "easy,sharebackfill", "", ",", "easy,,easy", " fcfs ", "EASY"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		names, err := parsePolicies(s)
		if err != nil {
			return
		}
		if len(names) == 0 {
			t.Fatalf("parsePolicies(%q) accepted an empty list", s)
		}
		for _, n := range names {
			if n == "" || n != strings.TrimSpace(n) {
				t.Fatalf("parsePolicies(%q) kept untrimmed/empty entry %q", s, n)
			}
		}
	})
}
