package main

import (
	"context"
	"io"
	"log"
	"os"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
)

// runDispatch serves the grid to simd daemons: sweep becomes the fabric
// dispatcher and the CSV is reassembled from remotely-computed rows in
// strict grid order — byte-identical to the local path, because both sides
// run the same sweepgrid cells and row encoder. started (optional) receives
// the bound address once listening, so tests can dial an ephemeral port.
func runDispatch(cfg config, addr string, out io.Writer, verbose bool, started func(string)) error {
	spec := cfg.spec()
	specBytes, err := spec.Marshal()
	if err != nil {
		return err
	}
	fcfg := fabric.Config{
		Cells: spec.NumCells(),
		Spec:  specBytes,
		Consume: func(i int, row []byte) error {
			_, err := out.Write(row)
			return err
		},
	}
	if verbose {
		logger := log.New(os.Stderr, "sweep: ", log.Ltime|log.Lmicroseconds)
		fcfg.Logf = logger.Printf
	}
	d, err := fabric.NewDispatcher(fcfg)
	if err != nil {
		return err
	}
	defer d.Close()
	// Header goes out before Listen: once the port is open, workers can
	// complete cells and Consume starts writing rows concurrently.
	header, err := sweepgrid.EncodeRow(sweepgrid.Header())
	if err != nil {
		return err
	}
	if _, err := out.Write(header); err != nil {
		return err
	}
	bound, err := d.Listen(addr)
	if err != nil {
		return err
	}
	if started != nil {
		started(bound)
	}
	return d.Wait(context.Background())
}
