package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
	"repro/internal/vfs"
)

// runDispatch serves the grid to simd daemons: sweep becomes the fabric
// dispatcher and the CSV is reassembled from remotely-computed rows in
// strict grid order — byte-identical to the local path, because both sides
// run the same sweepgrid cells and row encoder. started (optional) receives
// the bound address once listening, so tests can dial an ephemeral port.
//
// With journal set the campaign is crash-recoverable: accepted rows are
// journaled, and a dispatcher restarted on the same journal re-emits the
// committed prefix, requeues the rest, and fences workers still holding
// pre-crash leases. The signal ladder matches simd and mini-slurm: the
// first SIGINT/SIGTERM checkpoints the journal and drains (in-flight cells
// land, nothing new is granted; Wait returns fabric.ErrDrained), the second
// kills immediately.
func runDispatch(cfg config, addr, journal string, out io.Writer, verbose bool, started func(string)) error {
	spec := cfg.spec()
	specBytes, err := spec.Marshal()
	if err != nil {
		return err
	}
	// Header goes out before the dispatcher exists: a resumed campaign
	// re-emits its journal-committed rows inside NewDispatcher, and once the
	// port is open workers complete cells concurrently — either way rows
	// must land after the header.
	header, err := sweepgrid.EncodeRow(sweepgrid.Header())
	if err != nil {
		return err
	}
	if _, err := out.Write(header); err != nil {
		return err
	}
	fcfg := fabric.Config{
		Cells: spec.NumCells(),
		Spec:  specBytes,
		Consume: func(i int, row []byte) error {
			_, err := out.Write(row)
			return err
		},
		JournalPath: journal,
		FS:          vfs.OS{},
	}
	if verbose {
		logger := log.New(os.Stderr, "sweep: ", log.Ltime|log.Lmicroseconds)
		fcfg.Logf = logger.Printf
	}
	d, err := fabric.NewDispatcher(fcfg)
	if err != nil {
		return err
	}
	defer d.Close()

	// First signal drains (journal checkpointed; restart resumes), second
	// kills — the same shutdown ladder simd and mini-slurm follow.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	sigDone := make(chan struct{})
	defer close(sigDone)
	go func() {
		select {
		case <-sigs:
		case <-sigDone:
			return
		}
		fmt.Fprintln(os.Stderr, "sweep: draining (journal checkpointed; signal again to kill)")
		d.Drain()
		select {
		case <-sigs:
		case <-sigDone:
			return
		}
		fmt.Fprintln(os.Stderr, "sweep: killed")
		d.Close()
	}()

	bound, err := d.Listen(addr)
	if err != nil {
		return err
	}
	if started != nil {
		started(bound)
	}
	return d.Wait(context.Background())
}
