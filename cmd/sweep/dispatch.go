package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fabric"
	"repro/internal/sweepgrid"
	"repro/internal/vfs"
)

// dispatchOpts carries the optional dispatch-mode knobs: decision-log
// verbosity, the integrity/containment configuration forwarded to the
// fabric, where to write the poisoned-cell sidecar, and the started hook
// (which receives the bound address once listening, so tests can dial an
// ephemeral port).
type dispatchOpts struct {
	verbose         bool
	verifySample    float64
	verifySeed      uint64
	poisonAfter     int
	poisonedSidecar string
	started         func(string)
}

// sidecarPath resolves where the poisoned-cell report goes: the explicit
// flag, else next to the journal, else nowhere (the exit error still names
// every poisoned cell).
func (o dispatchOpts) sidecarPath(journal string) string {
	if o.poisonedSidecar != "" {
		return o.poisonedSidecar
	}
	if journal != "" {
		return journal + ".poisoned.json"
	}
	return ""
}

// runDispatch serves the grid to simd daemons: sweep becomes the fabric
// dispatcher and the CSV is reassembled from remotely-computed rows in
// strict grid order — byte-identical to the local path, because both sides
// run the same sweepgrid cells and row encoder.
//
// With journal set the campaign is crash-recoverable: accepted rows are
// journaled, and a dispatcher restarted on the same journal re-emits the
// committed prefix, requeues the rest, and fences workers still holding
// pre-crash leases. The signal ladder matches simd and mini-slurm: the
// first SIGINT/SIGTERM checkpoints the journal and drains (in-flight cells
// land, nothing new is granted; Wait returns fabric.ErrDrained), the second
// kills immediately.
//
// A campaign that completes around poisoned cells returns the fabric's
// *PoisonedError (sweep exits nonzero — the CSV is incomplete) after writing
// a machine-readable sidecar naming each poisoned cell and why, so an
// operator can recompute exactly the missing rows.
func runDispatch(cfg config, addr, journal string, out io.Writer, opts dispatchOpts) error {
	spec := cfg.spec()
	specBytes, err := spec.Marshal()
	if err != nil {
		return err
	}
	// Header goes out before the dispatcher exists: a resumed campaign
	// re-emits its journal-committed rows inside NewDispatcher, and once the
	// port is open workers complete cells concurrently — either way rows
	// must land after the header.
	header, err := sweepgrid.EncodeRow(sweepgrid.Header())
	if err != nil {
		return err
	}
	if _, err := out.Write(header); err != nil {
		return err
	}
	fcfg := fabric.Config{
		Cells: spec.NumCells(),
		Spec:  specBytes,
		Consume: func(i int, row []byte) error {
			_, err := out.Write(row)
			return err
		},
		JournalPath:    journal,
		FS:             vfs.OS{},
		VerifyFraction: opts.verifySample,
		VerifySeed:     opts.verifySeed,
		PoisonAfter:    opts.poisonAfter,
	}
	if opts.verbose {
		logger := log.New(os.Stderr, "sweep: ", log.Ltime|log.Lmicroseconds)
		fcfg.Logf = logger.Printf
	}
	d, err := fabric.NewDispatcher(fcfg)
	if err != nil {
		return err
	}
	defer d.Close()

	// First signal drains (journal checkpointed; restart resumes), second
	// kills — the same shutdown ladder simd and mini-slurm follow.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	sigDone := make(chan struct{})
	defer close(sigDone)
	go func() {
		select {
		case <-sigs:
		case <-sigDone:
			return
		}
		fmt.Fprintln(os.Stderr, "sweep: draining (journal checkpointed; signal again to kill)")
		d.Drain()
		select {
		case <-sigs:
		case <-sigDone:
			return
		}
		fmt.Fprintln(os.Stderr, "sweep: killed")
		d.Close()
	}()

	bound, err := d.Listen(addr)
	if err != nil {
		return err
	}
	if opts.started != nil {
		opts.started(bound)
	}
	err = d.Wait(context.Background())
	var perr *fabric.PoisonedError
	if errors.As(err, &perr) {
		writePoisonedSidecar(opts.sidecarPath(journal), perr)
	}
	return err
}

// writePoisonedSidecar records which cells the campaign completed around and
// why, as JSON next to the journal (or wherever -poisoned-sidecar points):
// the machine-readable companion to the nonzero exit, listing exactly the
// rows an operator must recompute.
func writePoisonedSidecar(path string, perr *fabric.PoisonedError) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(perr, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep: encode poisoned sidecar:", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sweep: write poisoned sidecar:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "sweep: poisoned-cell report written to", path)
}
