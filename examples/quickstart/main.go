// Quickstart: build a batch system, submit a handful of jobs, watch node
// sharing happen, and read the run's metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
)

func main() {
	// A small 8-node machine with 2-way SMT (the sharing substrate) under
	// the paper's primary strategy, co-allocation-aware backfill.
	sys, err := core.NewSystem(core.Config{
		Machine: cluster.Trinity(8),
		Policy:  "sharebackfill",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Watch the scheduler work.
	sys.Trace(func(line string) { fmt.Println(line) })

	// A bandwidth-bound solver takes the whole machine...
	host, err := sys.Submit(core.JobSpec{
		App: "minife", Nodes: 8, Walltime: 4 * des.Hour, Runtime: 2 * des.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	// ...and a compute-bound MD run arrives a minute later. Under exclusive
	// allocation it would wait two hours; under node sharing it co-allocates
	// onto the SMT sibling threads immediately.
	guest, err := sys.Submit(core.JobSpec{
		App: "minimd", Nodes: 8, Walltime: 2 * des.Hour, Runtime: 1 * des.Hour,
		At: des.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys.Run()

	h, g := sys.Job(host), sys.Job(guest)
	fmt.Printf("\nhost  %s: waited %s, ran %s→%s (stretch %.2f)\n",
		h.App.Name, h.WaitTime(), h.StartTime(), h.EndTime(), h.Stretch())
	fmt.Printf("guest %s: waited %s, ran %s→%s (stretch %.2f)\n",
		g.App.Name, g.WaitTime(), g.StartTime(), g.EndTime(), g.Stretch())

	m := sys.Metrics()
	fmt.Printf("\ncomputational efficiency: %.3f (1.0 = standard allocation)\n", m.CompEfficiency)
	fmt.Printf("machine time spent shared: %.0f%%\n", m.SharedFraction*100)
}
