// Operations: a day in the life of the node-sharing batch system from the
// operator's seat — drain a node for maintenance, watch the scheduler work
// around it, resume it, and read the accounting at the end, including the
// occupancy timeline.
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/acct"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	machine := cluster.Trinity(8)
	sys, err := core.NewSystem(core.Config{Machine: machine, Policy: "sharebackfill"})
	if err != nil {
		log.Fatal(err)
	}

	// Node 3 needs a DIMM swap before the morning rush.
	sys.Cluster().SetDrained(3, true)
	fmt.Println("node 3 drained for maintenance")

	// The morning's workload arrives.
	jobs, err := workload.Generate(workload.Spec{
		Mix: workload.TrinityMix(), Jobs: 40, Arrival: workload.Poisson,
		Load: 1.2, Cluster: machine, RuntimeScale: 0.02, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SubmitJobs(jobs); err != nil {
		log.Fatal(err)
	}

	// Run the first simulated half hour with the node out.
	sys.RunUntil(30 * des.Minute)
	fmt.Printf("t=%s: %d running, %d queued, node 3 still drained\n",
		sys.Now(), len(sys.Running()), len(sys.Pending()))

	// Maintenance done — resume and let the day play out.
	sys.Cluster().SetDrained(3, false)
	sys.Engine().Kick()
	fmt.Println("node 3 resumed")
	sys.Run()

	// The occupancy timeline: node 3's row starts idle (the '·' prefix).
	var spans []report.Span
	for _, rec := range sys.History() {
		for _, ni := range rec.Nodes {
			spans = append(spans, report.Span{
				Node: ni, Start: float64(rec.Start), End: float64(rec.End),
				Label: int(rec.Job) - 1,
			})
		}
	}
	fmt.Println()
	fmt.Print(report.Gantt(spans, machine.Nodes, 96, 0, 0))

	// End-of-day accounting, per application.
	fmt.Println()
	if err := acct.Summary(acct.FromJobs(sys.Finished())).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", sys.Metrics())
}
