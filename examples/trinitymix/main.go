// Trinitymix: explore the application layer — which Trinity mini-apps share
// nodes well? Prints each app's resource profile, the best and worst
// co-runner for each, and a pairing recommendation matrix derived from the
// interference model. This is the data a site would look at before enabling
// oversubscription.
//
//	go run ./examples/trinitymix
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/app"
	"repro/internal/interference"
	"repro/internal/report"
)

func main() {
	models := app.Catalogue()
	inter := interference.Default()

	profile := report.New("Trinity mini-app resource profiles",
		"app", "bottleneck", "cpu", "membw", "cache", "net", "mem/node")
	for _, m := range models {
		profile.Add(m.Name, m.Bottleneck().String(),
			report.F(m.Stress[app.CPU], 2), report.F(m.Stress[app.MemBW], 2),
			report.F(m.Stress[app.Cache], 2), report.F(m.Stress[app.Network], 2),
			fmt.Sprintf("%dGB", m.MemPerNodeMB/1024))
	}
	if err := profile.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	pairs := report.New("best and worst co-runner per app (node throughput change when sharing)",
		"app", "best partner", "gain", "worst partner", "loss/gain")
	for _, m := range models {
		bestGain, worstGain := -10.0, 10.0
		var best, worst string
		for _, other := range models {
			g := inter.PairGain(m.Stress, other.Stress)
			if g > bestGain {
				bestGain, best = g, other.Name
			}
			if g < worstGain {
				worstGain, worst = g, other.Name
			}
		}
		pairs.Add(m.Name, best, report.Pct(bestGain), worst, report.Pct(worstGain))
	}
	pairs.AddNote("gains above 0 mean one shared node outperforms one dedicated node")
	if err := pairs.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	rec := report.New("pairing recommendation (✓ share, · neutral, ✗ avoid)", header(models)...)
	for _, m := range models {
		row := []string{m.Name}
		for _, other := range models {
			g := inter.PairGain(m.Stress, other.Stress)
			switch {
			case g > 0.25:
				row = append(row, "✓")
			case g >= 0:
				row = append(row, "·")
			default:
				row = append(row, "✗")
			}
		}
		rec.Add(row...)
	}
	if err := rec.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func header(models []app.Model) []string {
	cols := []string{"app"}
	for _, m := range models {
		cols = append(cols, m.Name)
	}
	return cols
}
