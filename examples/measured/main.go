// Measured: the bring-your-own-measurements workflow. Sites that enable
// oversubscription measure co-run pair slowdowns empirically instead of
// trusting an analytic model; this example exports the analytic matrix as a
// template, "measures" one pair as far worse than the model believes, and
// shows the scheduler reacting — the poisoned pair stops being co-located.
//
//	go run ./examples/measured
package main

import (
	"fmt"
	"log"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/interference"
	"repro/internal/sched"
)

func main() {
	// The analytic model believes miniFE+miniMD is the dream pairing.
	inter := interference.Default()
	fe, _ := app.ByName("minife")
	md, _ := app.ByName("minimd")
	ra, rb := inter.PairRates(fe.Stress, md.Stress)
	fmt.Printf("analytic model:  minife@%.2f + minimd@%.2f (throughput %.2f)\n",
		ra, rb, ra+rb)

	// Suppose the site's measurements disagree: on their hardware the pair
	// thrashes (say, a NUMA pathology the analytic model cannot see).
	measured := []interference.MeasuredPair{
		{A: "minife", B: "minimd", RateA: 0.35, RateB: 0.40},
	}
	fmt.Println("site measurement: minife@0.35 + minimd@0.40 (throughput 0.75 — sharing loses!)")

	run := func(pairs []interference.MeasuredPair, minRate float64) (des.Time, bool) {
		share := sched.DefaultShareConfig()
		share.MinEstimatedRate = minRate
		sys, err := core.NewSystem(core.Config{
			Machine:       cluster.Trinity(4),
			Policy:        "sharebackfill",
			Sharing:       &share,
			MeasuredPairs: pairs,
		})
		if err != nil {
			log.Fatal(err)
		}
		host, err := sys.Submit(core.JobSpec{
			App: "minife", Nodes: 4, Walltime: 8 * des.Hour, Runtime: 2 * des.Hour})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Submit(core.JobSpec{
			App: "minimd", Nodes: 4, Walltime: 8 * des.Hour, Runtime: 2 * des.Hour,
			At: des.Minute}); err != nil {
			log.Fatal(err)
		}
		sys.Run()
		h := sys.Job(host)
		return sys.Now(), h.EverShared()
	}

	end, shared := run(nil, 0)
	fmt.Printf("\nanalytic scheduling:              done at %s, shared: %v\n", end, shared)

	// With only the measurements installed, the scheduler still co-locates
	// (the complementarity heuristic approves) but execution runs at the
	// measured rates — the makespan balloons.
	end, shared = run(measured, 0)
	fmt.Printf("measured rates, no gate:          done at %s, shared: %v\n", end, shared)

	// Adding the MinEstimatedRate gate lets the scheduler consult the
	// measured matrix at admission time: the poisoned pair is refused and
	// the jobs run back to back instead.
	end, shared = run(measured, 0.5)
	fmt.Printf("measured rates + 0.5 rate gate:   done at %s, shared: %v\n", end, shared)

	fmt.Println("\nexport the template with:  nodeshare-sim -corun-template > corun.csv")
}
