// Slurmproto: drive the SLURM-like workload manager programmatically — boot
// a controller + protocol server in-process, submit a morning's worth of
// jobs over TCP like sbatch would, advance simulated time, and read queue
// state through the same wire protocol the command-line tools use.
//
//	go run ./examples/slurmproto
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/des"
	"repro/internal/slurm"
)

func main() {
	// A config exactly as mini-slurm serve would load from slurm.conf.
	conf := `
ClusterName=example
SchedulerType=sched/share_backfill
OverSubscribe=YES
MinComplementarity=0.4
NodeName=nid[01-08] CPUs=64 ThreadsPerCore=2 RealMemory=131072
PartitionName=batch MaxTime=86400
PriorityWeightAge=1000
PriorityWeightJobSize=100
`
	cfg, err := slurm.ParseConfig(strings.NewReader(conf))
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := slurm.NewController(cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := slurm.NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("controller for %q listening on %s\n\n", cfg.ClusterName, addr)

	cl, err := slurm.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// 08:00 — a bandwidth-bound solver takes the machine.
	if _, err := cl.Submit("minife", 8, 6*des.Hour, 4*des.Hour, "solver"); err != nil {
		log.Fatal(err)
	}
	// 08:01 — an MD production run arrives; complementary, so it
	// co-allocates instead of queueing.
	if _, err := cl.Advance(des.Minute); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Submit("minimd", 8, 4*des.Hour, 3*des.Hour, "md-prod"); err != nil {
		log.Fatal(err)
	}
	// 08:02 — another bandwidth-bound job clashes with the solver and must
	// wait for a reservation.
	if _, err := cl.Advance(des.Minute); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Submit("milc", 8, 2*des.Hour, 1*des.Hour, "qcd"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("queue two minutes into the morning:")
	jobs, err := cl.Queue(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(slurm.Squeue(jobs))

	nodes, err := cl.Nodes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(slurm.SinfoSummary(nodes))

	// Let the day play out and account for it.
	if _, err := cl.Drain(); err != nil {
		log.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nend of day: %s\n", st)
}
