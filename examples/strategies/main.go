// Strategies: run the same Trinity workload under every scheduling policy
// and compare the paper's headline metrics side by side — the evaluation's
// core comparison as a twenty-line program.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	machine := cluster.Trinity(32)
	// One high-load Trinity mix, identical for every policy (same seed).
	spec := workload.Spec{
		Mix:     workload.TrinityMix(),
		Jobs:    300,
		Arrival: workload.Poisson,
		Load:    1.4,
		Cluster: machine,
		// Scale the mini-apps' hours down to minutes so the example runs
		// in about a second; the workload shape is unchanged.
		RuntimeScale: 0.05,
		Seed:         42,
	}

	tbl := report.New("node sharing strategies on one Trinity workload",
		"policy", "CE", "SE", "util", "wait mean", "slowdown")
	for _, policy := range core.Policies() {
		jobs, err := workload.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(core.Config{Machine: machine, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SubmitJobs(jobs); err != nil {
			log.Fatal(err)
		}
		sys.Run()
		m := sys.Metrics()
		tbl.Add(policy,
			report.F(m.CompEfficiency, 3),
			report.F(m.SchedEfficiency, 3),
			report.F(m.Utilization, 3),
			fmt.Sprintf("%.0fs", m.Wait.Mean),
			report.F(m.Slowdown.Mean, 2),
		)
	}
	tbl.AddNote("paper: sharing ≈ +19%% computational efficiency, +25.2%% scheduling efficiency")
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
