package repro

// The benchmark harness: one benchmark per table and figure of the
// evaluation (DESIGN.md §4) plus the ablations (§5) and micro-benchmarks of
// the hot paths. Each table/figure benchmark regenerates its experiment
// end to end through the simulator and reports the experiment's headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/exp"
	"repro/internal/interference"
	"repro/internal/job"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts keeps one experiment iteration around a hundred milliseconds
// while preserving the workload shape; the exprun CLI runs the full-size
// versions.
func benchOpts() exp.Options {
	return exp.Options{Seeds: []uint64{42}, Nodes: 32, Jobs: 150, RuntimeScale: 0.02}
}

// runExperiment drives one registry entry b.N times and reports metric
// (extracted from the named column of the named row) as a custom benchmark
// metric.
func runExperiment(b *testing.B, id, rowKey, column, metricName string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if metricName == "" {
		return
	}
	v, ok := cellValue(tbl, rowKey, column)
	if !ok {
		b.Fatalf("%s: no cell (%q, %q) in:\n%s", id, rowKey, column, tbl)
	}
	b.ReportMetric(v, metricName)
}

// cellValue finds the row whose first cell equals rowKey and parses the
// named column as a float (tolerating %-suffixed cells).
func cellValue(t *report.Table, rowKey, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, row := range t.Rows {
		if len(row) > col && row[0] == rowKey {
			s := strings.TrimSuffix(strings.TrimSpace(row[col]), "%")
			v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// --- Tables ---

func BenchmarkTableT1AppCatalogue(b *testing.B) {
	runExperiment(b, "T1", "", "", "")
}

func BenchmarkTableT2CorunMatrix(b *testing.B) {
	runExperiment(b, "T2", "", "", "")
}

func BenchmarkTableT3StrategySummary(b *testing.B) {
	runExperiment(b, "T3", "sharebackfill", "CE", "CE")
}

// --- Figures ---

func BenchmarkFigureF1CompEfficiency(b *testing.B) {
	// Headline 1: computational efficiency of sharing (paper: ≈ +19%).
	runExperiment(b, "F1", "sharebackfill", "CE mean", "CE")
}

func BenchmarkFigureF2SchedEfficiency(b *testing.B) {
	// Headline 2: scheduling efficiency of sharing (paper: ≈ +25.2%).
	runExperiment(b, "F2", "sharebackfill", "SE mean", "SE")
}

func BenchmarkFigureF3Overhead(b *testing.B) {
	runExperiment(b, "F3", "", "", "")
}

func BenchmarkFigureF4WaitSlowdown(b *testing.B) {
	runExperiment(b, "F4", "", "", "")
}

func BenchmarkFigureF5LoadSweep(b *testing.B) {
	runExperiment(b, "F5", "", "", "")
}

func BenchmarkFigureF6MixSensitivity(b *testing.B) {
	runExperiment(b, "F6", "trinity", "CE share", "CE")
}

func BenchmarkFigureF7OversubSweep(b *testing.B) {
	runExperiment(b, "F7", "", "", "")
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationPairing(b *testing.B) {
	runExperiment(b, "A1", "pairing-aware (default)", "CE", "CE")
}

func BenchmarkAblationInflation(b *testing.B) {
	runExperiment(b, "A2", "accounting on (default)", "CE", "CE")
}

func BenchmarkAblationPreferShared(b *testing.B) {
	runExperiment(b, "A3", "share-first (default)", "CE", "CE")
}

func BenchmarkAblationLimits(b *testing.B) {
	runExperiment(b, "A4", "", "", "")
}

func BenchmarkFigureF8Fairness(b *testing.B) {
	runExperiment(b, "F8", "", "", "")
}

func BenchmarkTableE1Energy(b *testing.B) {
	runExperiment(b, "E1", "sharebackfill", "energy(kWh)", "kWh")
}

func BenchmarkFigureF9WalltimeAccuracy(b *testing.B) {
	runExperiment(b, "F9", "", "", "")
}

func BenchmarkFigureF10Locality(b *testing.B) {
	runExperiment(b, "F10", "", "", "")
}

func BenchmarkFigureF11SchedInterval(b *testing.B) {
	runExperiment(b, "F11", "", "", "")
}

func BenchmarkFigureF12Resilience(b *testing.B) {
	// Goodput of sharing under a 6-hour per-node MTBF with job crashes.
	runExperiment(b, "F12", "sharebackfill/6h", "goodput", "goodput")
}

func BenchmarkTableT4PerApp(b *testing.B) {
	runExperiment(b, "T4", "", "", "")
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkSchedulerPass measures one policy decision pass on a realistic
// mid-run state (the F3 latency experiment's inner loop).
func BenchmarkSchedulerPass(b *testing.B) {
	for _, policy := range []string{"easy", "conservative", "sharefirstfit", "sharebackfill"} {
		b.Run(policy, func(b *testing.B) {
			ctx, err := exp.BuildOverheadContext(exp.Options{}, 200)
			if err != nil {
				b.Fatal(err)
			}
			pol, err := sched.New(policy, sched.DefaultShareConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol.Schedule(ctx)
			}
		})
	}
}

// BenchmarkEngineThroughput measures full simulation speed in jobs/second of
// real time — the number that makes parameter sweeps cheap.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, policy := range []string{"easy", "sharebackfill"} {
		b.Run(policy, func(b *testing.B) {
			machine := cluster.Trinity(32)
			const jobCount = 200
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				jobs, err := workload.Generate(workload.Spec{
					Mix: workload.TrinityMix(), Jobs: jobCount,
					Arrival: workload.Poisson, Load: 1.2,
					Cluster: machine, RuntimeScale: 0.02, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				pol, err := sched.New(policy, sched.DefaultShareConfig())
				if err != nil {
					b.Fatal(err)
				}
				e := sim.New(sim.Config{Cluster: machine, Policy: pol})
				if err := e.SubmitAll(jobs); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				e.RunAll()
			}
			b.ReportMetric(float64(jobCount)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// sweepGrid is the canonical perf-trajectory grid for BENCH_sweep.json:
// three policies × two loads × two seeds, 150 jobs on 32 Trinity nodes —
// the same shape the sweep CLI runs, small enough to sample repeatedly.
type sweepGridSpec struct {
	Policies []string  `json:"policies"`
	Loads    []float64 `json:"loads"`
	Seeds    int       `json:"seeds"`
	Jobs     int       `json:"jobs"`
	Nodes    int       `json:"nodes"`
	Scale    float64   `json:"runtime_scale"`
}

func benchSweepGrid() sweepGridSpec {
	return sweepGridSpec{
		Policies: []string{"easy", "sharefirstfit", "sharebackfill"},
		Loads:    []float64{0.9, 1.4},
		Seeds:    2,
		Jobs:     150,
		Nodes:    32,
		Scale:    0.05,
	}
}

func (g sweepGridSpec) cells() int { return len(g.Policies) * len(g.Loads) * g.Seeds }

// runSweepGrid executes the grid through the parallel runner exactly as
// cmd/sweep does: every cell an isolated simulation, results reassembled in
// grid order.
func runSweepGrid(g sweepGridSpec, workers int) error {
	machine := cluster.Trinity(g.Nodes)
	mix := workload.TrinityMix()
	type cell struct {
		policy string
		load   float64
		seed   uint64
	}
	var cells []cell
	for _, p := range g.Policies {
		for _, l := range g.Loads {
			for s := 0; s < g.Seeds; s++ {
				cells = append(cells, cell{p, l, uint64(42 + s)})
			}
		}
	}
	_, err := parallel.Run(len(cells), workers, func(i int) (float64, error) {
		c := cells[i]
		jobs, err := workload.Generate(workload.Spec{
			Mix: mix, Jobs: g.Jobs, Arrival: workload.Poisson, Load: c.load,
			Cluster: machine, RuntimeScale: g.Scale, Seed: c.seed,
		})
		if err != nil {
			return 0, err
		}
		pol, err := sched.New(c.policy, sched.DefaultShareConfig())
		if err != nil {
			return 0, err
		}
		e := sim.New(sim.Config{Cluster: machine, Policy: pol})
		if err := e.SubmitAll(jobs); err != nil {
			return 0, err
		}
		e.RunAll()
		return e.Result().CompEfficiency, nil
	})
	return err
}

// BenchmarkSweepGrid measures experiment-grid throughput in cells/second —
// the quantity that decides how much statistical power a parameter sweep
// can afford. workers=1 is the sequential baseline; workers=4 shows the
// parallel runner's scaling on multicore hosts.
func BenchmarkSweepGrid(b *testing.B) {
	g := benchSweepGrid()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runSweepGrid(g, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.cells()*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkInterferenceNodeRates measures the co-run model evaluation that
// runs on every co-location change.
func BenchmarkInterferenceNodeRates(b *testing.B) {
	m := interference.Default()
	cat := app.Catalogue()
	loads := []app.StressVector{cat[0].Stress, cat[1].Stress}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NodeRates(loads)
	}
}

// BenchmarkClusterAllocate measures layer allocation + release, the
// engine's per-start bookkeeping.
func BenchmarkClusterAllocate(b *testing.B) {
	c := cluster.New(cluster.Trinity(32))
	nodes := []int{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := cluster.JobID(i + 1)
		if err := c.Allocate(c.LayerPlacement(id, nodes, cluster.PrimaryLayer, 1024)); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventKernel measures raw discrete-event throughput.
func BenchmarkEventKernel(b *testing.B) {
	s := des.NewSimulator()
	var tick des.Handler
	n := 0
	tick = func(sim *des.Simulator) {
		n++
		if n < b.N {
			sim.ScheduleIn(1, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(0, tick)
	s.RunAll()
}

// BenchmarkJobProgressIntegration measures the rate-change path (SetRate +
// completion reprojection) that fires on every co-location change.
func BenchmarkJobProgressIntegration(b *testing.B) {
	a := app.Catalogue()[0]
	j := &job.Job{ID: 1, App: a, Nodes: 1, ReqWalltime: 1e12, TrueRuntime: 1e12, Submit: 0}
	j.Start(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := des.Time(i + 1)
		j.SetRate(t, 0.5+0.4*float64(i%2))
		j.ETA(t)
	}
}
