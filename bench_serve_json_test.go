package repro

// TestEmitBenchServeJSON storms a journaled slurm server with the open-loop
// bench harness at roughly 2x its fsync-bound capacity and writes
// BENCH_serve.json: per-class (control/submit/query) latency percentiles,
// shed/busy/deadline outcome counts, submit goodput, and the server's own
// serve counters and brownout state. The journal's fsync cost is modeled (a
// fixed 4ms stall per sync) so the run measures the robustness machinery, not
// the host's disk. Opt-in — set BENCH_SERVE_JSON to the output path:
//
//	BENCH_SERVE_JSON=BENCH_serve.json go test -run TestEmitBenchServeJSON -count=1 .
//
// CI runs it in the serve job and uploads the file as an artifact.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/slurm"
	"repro/internal/vfs"
)

// benchStallFS models a real disk under a journal: every fsync costs a fixed
// 4ms, so a submit-heavy storm saturates the mutation path at a deterministic
// rate regardless of how fast the CI host's tmpfs is.
type benchStallFS struct {
	vfs.FS
	stall time.Duration
}

type benchStallFile struct {
	vfs.File
	stall time.Duration
}

func (fs benchStallFS) Create(path string) (vfs.File, error) {
	f, err := fs.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return benchStallFile{f, fs.stall}, nil
}

func (fs benchStallFS) OpenAppend(path string) (vfs.File, error) {
	f, err := fs.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return benchStallFile{f, fs.stall}, nil
}

func (f benchStallFile) Sync() error {
	time.Sleep(f.stall)
	return f.File.Sync()
}

func TestEmitBenchServeJSON(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_JSON")
	if out == "" {
		t.Skip("set BENCH_SERVE_JSON=<path> to emit the serve perf file")
	}

	cfg := slurm.DefaultConfig()
	cfg.Machine = cluster.Config{Nodes: 8, CoresPerNode: 16, ThreadsPerCore: 2, MemoryPerNodeMB: 64 * 1024}
	cfg.Partition = slurm.Partition{Name: "batch", MaxTime: des.Day, MaxNodes: 8}
	// Serve-shaped limits matching the cmd/slurm-bench defaults, so the
	// artifact reflects the shipped knobs rather than a bespoke tuning.
	cfg.Overload = slurm.OverloadConfig{
		MaxConns:             256,
		MaxInflight:          8,
		RetryAfter:           5 * time.Millisecond,
		HistoryLimit:         1024,
		ShedTarget:           5 * time.Millisecond,
		ShedWindow:           25 * time.Millisecond,
		BrownoutStep:         150 * time.Millisecond,
		BrownoutCooldown:     300 * time.Millisecond,
		BrownoutHistoryLimit: 64,
		BrownoutStaleFor:     100 * time.Millisecond,
	}
	// 4ms per fsync bounds the mutation path at ~250 submits/s; the storm
	// below offers ~480/s, an honest 2x overload.
	ctl, err := slurm.OpenJournaledFS(cfg, benchStallFS{vfs.OS{}, 4 * time.Millisecond}, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	srv := slurm.NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(10 * time.Second)

	res, err := slurm.RunBench(slurm.BenchConfig{
		Addr:           addr,
		Seed:           42,
		Duration:       3 * time.Second,
		Rate:           1200,
		Conns:          24,
		DeadlineBudget: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, res)
}
