package repro

// The machine-readable perf trajectory: TestEmitBenchSweepJSON samples the
// sweep-engine and scheduler hot-path benchmarks and writes BENCH_sweep.json
// so every commit's numbers are comparable. The test is opt-in — set
// BENCH_SWEEP_JSON to the output path:
//
//	BENCH_SWEEP_JSON=BENCH_sweep.json go test -run TestEmitBenchSweepJSON -count=1 .
//
// CI runs it on every PR and uploads the file as an artifact.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/sched"
)

// seedBaseline pins the numbers measured at commit 5bec083 — the last
// commit before the parallel sweep engine and the cluster's free-capacity
// index landed — on a 1-core Xeon @ 2.10GHz reference host. They anchor the
// perf trajectory: speedups in BENCH_sweep.json are relative to these.
var seedBaseline = baselineNumbers{
	Description:  "sequential sweep + per-candidate rescan scheduler (commit 5bec083, 1-core Xeon 2.10GHz)",
	CellsPerSec:  40.3,
	SchedNsPerOp: map[string]float64{"easy": 21743, "conservative": 70737, "sharefirstfit": 80097, "sharebackfill": 113638},
	SchedAllocs:  map[string]float64{"easy": 131, "conservative": 137, "sharefirstfit": 1028, "sharebackfill": 1180},
}

type baselineNumbers struct {
	Description  string             `json:"description"`
	CellsPerSec  float64            `json:"cells_per_sec"`
	SchedNsPerOp map[string]float64 `json:"sched_decision_ns_per_op"`
	SchedAllocs  map[string]float64 `json:"sched_decision_allocs_per_op"`
}

type schedDecision struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type benchSweepReport struct {
	Schema   string        `json:"schema"`
	HostCPUs int           `json:"host_cpus"`
	Grid     sweepGridSpec `json:"grid"`
	// CellsPerSec maps worker counts ("workers_1", "workers_4") to measured
	// grid throughput.
	CellsPerSec map[string]float64 `json:"cells_per_sec"`
	// ParallelSpeedup is workers_4 over workers_1 on this host (≈1 on a
	// single-core host; the runner cannot beat the hardware).
	ParallelSpeedup float64 `json:"parallel_speedup_4w"`
	// SpeedupVsSeedSequential is workers_4 throughput over the recorded
	// seed baseline: hot-path gains × parallel gains.
	SpeedupVsSeedSequential float64                  `json:"speedup_vs_seed_sequential"`
	SchedDecision           map[string]schedDecision `json:"sched_decision"`
	SeedBaseline            baselineNumbers          `json:"seed_baseline"`
}

func TestEmitBenchSweepJSON(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_JSON")
	if out == "" {
		t.Skip("set BENCH_SWEEP_JSON=<path> to emit the perf-trajectory file")
	}
	g := benchSweepGrid()
	report := benchSweepReport{
		Schema:        "bench-sweep/v1",
		HostCPUs:      runtime.NumCPU(),
		Grid:          g,
		CellsPerSec:   map[string]float64{},
		SchedDecision: map[string]schedDecision{},
		SeedBaseline:  seedBaseline,
	}

	for _, workers := range []int{1, 4} {
		w := workers
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runSweepGrid(g, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		key := map[int]string{1: "workers_1", 4: "workers_4"}[workers]
		report.CellsPerSec[key] = float64(g.cells()) * float64(r.N) / r.T.Seconds()
	}
	report.ParallelSpeedup = report.CellsPerSec["workers_4"] / report.CellsPerSec["workers_1"]
	report.SpeedupVsSeedSequential = report.CellsPerSec["workers_4"] / seedBaseline.CellsPerSec

	for _, policy := range []string{"easy", "conservative", "sharefirstfit", "sharebackfill"} {
		p := policy
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			ctx, err := exp.BuildOverheadContext(exp.Options{}, 200)
			if err != nil {
				b.Fatal(err)
			}
			pol, err := sched.New(p, sched.DefaultShareConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol.Schedule(ctx)
			}
		})
		report.SchedDecision[p] = schedDecision{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1f cells/s at 4 workers (%.2fx vs seed sequential baseline, %d-CPU host)",
		out, report.CellsPerSec["workers_4"], report.SpeedupVsSeedSequential, report.HostCPUs)
}
