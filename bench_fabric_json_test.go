package repro

// TestEmitBenchFabricJSON measures the distributed sweep fabric against the
// in-process parallel runner on the same grid and writes BENCH_fabric.json:
// cells/sec for a localhost 4-daemon fabric run vs. -workers 4, the fault
// counters the run accrued (requeues, speculative grants/wins, dedupes),
// and a byte-identity verdict. Opt-in — set BENCH_FABRIC_JSON to the output
// path:
//
//	BENCH_FABRIC_JSON=BENCH_fabric.json go test -run TestEmitBenchFabricJSON -count=1 .
//
// CI runs it in the fabric job and uploads the file as an artifact.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/parallel"
	"repro/internal/sweepgrid"
)

type benchFabricReport struct {
	Schema   string         `json:"schema"`
	HostCPUs int            `json:"host_cpus"`
	Grid     sweepgrid.Spec `json:"grid"`
	// CellsPerSec compares the two execution paths on this host: the
	// in-process pool ("local_workers_4") and four worker daemons completing
	// cells over localhost TCP ("fabric_4_daemons").
	CellsPerSec map[string]float64 `json:"cells_per_sec"`
	// FabricEfficiency is fabric over local throughput — the price of
	// leases, heartbeats, and TCP on a single host (expect <1; the fabric
	// buys fault tolerance and multi-host scale, not single-host speed).
	FabricEfficiency float64 `json:"fabric_efficiency_4d"`
	// Counters is the fabric run's decision tally (requeues and speculative
	// wins are normally 0 on a quiet localhost run; nonzero values mean the
	// machinery fired).
	Counters fabric.Counters `json:"counters"`
	// ByteIdentical records that the fabric CSV equalled the local CSV.
	ByteIdentical bool `json:"byte_identical"`
}

func TestEmitBenchFabricJSON(t *testing.T) {
	out := os.Getenv("BENCH_FABRIC_JSON")
	if out == "" {
		t.Skip("set BENCH_FABRIC_JSON=<path> to emit the fabric perf file")
	}

	spec := sweepgrid.Spec{
		Policies: []string{"easy", "sharefirstfit", "sharebackfill"},
		Loads:    []float64{0.9, 1.4},
		Seeds:    2,
		Nodes:    32,
		Jobs:     150,
		Mix:      "trinity",
		Scale:    0.05,
	}
	n := spec.NumCells()

	// Local path: the §10 in-process pool at 4 workers.
	var localBuf bytes.Buffer
	localStart := time.Now()
	err := parallel.RunOrdered(n, 4,
		func(i int) ([]byte, error) { return spec.RunCellBytes(i) },
		func(i int, row []byte) error { _, err := localBuf.Write(row); return err })
	if err != nil {
		t.Fatal(err)
	}
	localSecs := time.Since(localStart).Seconds()

	// Fabric path: dispatcher + 4 worker daemons over localhost TCP, built
	// exactly as cmd/simd builds them.
	raw, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var remoteBuf bytes.Buffer
	d, err := fabric.NewDispatcher(fabric.Config{
		Cells: n,
		Spec:  raw,
		Consume: func(i int, row []byte) error {
			_, err := remoteBuf.Write(row)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	fabricStart := time.Now()
	for i := 0; i < 4; i++ {
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			ID:   fmt.Sprintf("bench-daemon-%d", i),
			Addr: addr,
			Fn: func(ctx context.Context, cell int, progress func(float64)) ([]byte, error) {
				return spec.RunCellBytes(cell)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}
	if err := d.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	fabricSecs := time.Since(fabricStart).Seconds()

	identical := bytes.Equal(localBuf.Bytes(), remoteBuf.Bytes())
	if !identical {
		t.Errorf("fabric output differs from local run (%d vs %d bytes)",
			remoteBuf.Len(), localBuf.Len())
	}

	report := benchFabricReport{
		Schema:   "bench-fabric/v1",
		HostCPUs: runtime.NumCPU(),
		Grid:     spec,
		CellsPerSec: map[string]float64{
			"local_workers_4":  float64(n) / localSecs,
			"fabric_4_daemons": float64(n) / fabricSecs,
		},
		Counters:      d.Counters(),
		ByteIdentical: identical,
	}
	report.FabricEfficiency = report.CellsPerSec["fabric_4_daemons"] / report.CellsPerSec["local_workers_4"]

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: fabric %.1f cells/s vs local %.1f cells/s (%.2fx), byte_identical=%v, counters=%+v",
		out, report.CellsPerSec["fabric_4_daemons"], report.CellsPerSec["local_workers_4"],
		report.FabricEfficiency, identical, report.Counters)
}
