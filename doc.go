// Package repro is a from-scratch Go reproduction of the IPDPS 2019
// node-sharing batch-scheduling study: sharing HPC nodes by oversubscribing
// cores through hyper-threading, with co-allocation-aware extensions of the
// first-fit and backfill scheduling algorithms, evaluated against standard
// node allocation on NERSC-Trinity-style mini-application workloads.
//
// See DESIGN.md for the paper-identification note, the system inventory, and
// the per-experiment index; EXPERIMENTS.md records paper-vs-measured results
// for every table and figure. The root package holds only the benchmark
// harness (bench_test.go) that regenerates each of them; the implementation
// lives under internal/ and the runnable tools under cmd/ and examples/.
package repro
